//===- tests/tools_test.cpp - End-to-end tests of the CLI tools -----------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives the installed binaries (tlc, tlrun, gprof, prof) exactly as a
/// user would: compile a TL file, run it to produce gmon.out, and
/// post-process.  Binary locations are injected by CMake.
///
//===----------------------------------------------------------------------===//

#include "gmon/GmonFile.h"
#include "support/FileUtils.h"
#include "support/Format.h"
#include "support/TraceWriter.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include <unistd.h>

using namespace gprof;

namespace {

/// Runs a command, capturing stdout; returns the exit code.
int runCommand(const std::string &Command, std::string &Output) {
  std::string Full = Command + " 2>&1";
  std::FILE *Pipe = popen(Full.c_str(), "r");
  if (!Pipe)
    return -1;
  Output.clear();
  char Buf[4096];
  while (size_t N = std::fread(Buf, 1, sizeof(Buf), Pipe))
    Output.append(Buf, N);
  int Status = pclose(Pipe);
  return WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
}

std::string tempPath(const std::string &Name) {
  // Per-process paths: ctest runs each test case as its own process, so a
  // shared fixed path would race under parallel test execution.
  return testing::TempDir() +
         format("/gprof_tools_%d_%s", getpid(), Name.c_str());
}

const char *SampleProgram = R"(
  fn leaf(x) { return x * x; }
  fn middle(n) {
    var acc = 0;
    var i = 0;
    while (i < n) { acc = acc + leaf(i); i = i + 1; }
    return acc;
  }
  fn never_called() { return 42; }
  fn main() {
    print middle(400);
    return 0;
  }
)";

/// Fixture: compiles and runs the sample program once for all tests.
class ToolsTest : public testing::Test {
protected:
  static void SetUpTestSuite() {
    Src = new std::string(tempPath("prog.tl"));
    Img = new std::string(tempPath("prog.tlx"));
    Gmon = new std::string(tempPath("gmon.out"));
    cantFail(writeFileText(*Src, SampleProgram));

    std::string Out;
    int Rc = runCommand(format("%s %s --pg -o %s", TLC_PATH, Src->c_str(),
                               Img->c_str()),
                        Out);
    ASSERT_EQ(Rc, 0) << Out;
    Rc = runCommand(format("%s %s --gmon %s --cycles-per-tick 100",
                           TLRUN_PATH, Img->c_str(), Gmon->c_str()),
                    Out);
    ASSERT_EQ(Rc, 0) << Out;
  }

  static void TearDownTestSuite() {
    std::remove(Src->c_str());
    std::remove(Img->c_str());
    std::remove(Gmon->c_str());
    delete Src;
    delete Img;
    delete Gmon;
  }

  static std::string *Src, *Img, *Gmon;
};

std::string *ToolsTest::Src = nullptr;
std::string *ToolsTest::Img = nullptr;
std::string *ToolsTest::Gmon = nullptr;

} // namespace

TEST_F(ToolsTest, TlrunPrintsProgramOutput) {
  std::string Out;
  int Rc = runCommand(format("%s %s --gmon %s", TLRUN_PATH, Img->c_str(),
                             tempPath("scratch.out").c_str()),
                      Out);
  EXPECT_EQ(Rc, 0);
  // middle(400) = sum of squares 0..399.
  EXPECT_NE(Out.find("21253400"), std::string::npos) << Out;
  EXPECT_NE(Out.find("profile written"), std::string::npos) << Out;
}

TEST_F(ToolsTest, GprofProducesBothListings) {
  std::string Out;
  int Rc = runCommand(format("%s %s %s", GPROF_PATH, Img->c_str(),
                             Gmon->c_str()),
                      Out);
  EXPECT_EQ(Rc, 0) << Out;
  EXPECT_NE(Out.find("flat profile"), std::string::npos);
  EXPECT_NE(Out.find("call graph profile"), std::string::npos);
  EXPECT_NE(Out.find("leaf"), std::string::npos);
  EXPECT_NE(Out.find("400/400"), std::string::npos); // middle -> leaf.
  EXPECT_NE(Out.find("never_called"), std::string::npos);
  EXPECT_NE(Out.find("index by function name"), std::string::npos);
}

TEST_F(ToolsTest, GprofBriefAndFilters) {
  std::string Out;
  int Rc = runCommand(format("%s -b --graph-only --only leaf --no-index "
                             "%s %s",
                             GPROF_PATH, Img->c_str(), Gmon->c_str()),
                      Out);
  EXPECT_EQ(Rc, 0) << Out;
  EXPECT_EQ(Out.find("flat profile"), std::string::npos);
  EXPECT_NE(Out.find("leaf"), std::string::npos);
  // Only leaf's entry: middle has no primary line (its "called+self"
  // marker "1 middle" appears only if its entry prints).
  EXPECT_EQ(Out.find("middle [2]\n-----"), std::string::npos);
}

TEST_F(ToolsTest, GprofSumsMultipleRuns) {
  std::string Gmon2 = tempPath("gmon2.out");
  std::string Out;
  int Rc = runCommand(format("%s %s --gmon %s --cycles-per-tick 100 -q",
                             TLRUN_PATH, Img->c_str(), Gmon2.c_str()),
                      Out);
  ASSERT_EQ(Rc, 0);
  Rc = runCommand(format("%s -b %s %s %s", GPROF_PATH, Img->c_str(),
                         Gmon->c_str(), Gmon2.c_str()),
                  Out);
  EXPECT_EQ(Rc, 0) << Out;
  // Two summed runs: middle called twice, leaf 800 times.
  EXPECT_NE(Out.find("800/800"), std::string::npos) << Out;
  std::remove(Gmon2.c_str());
}

TEST_F(ToolsTest, ProfPrintsFlatTable) {
  std::string Out;
  int Rc = runCommand(format("%s %s %s", PROF_PATH, Img->c_str(),
                             Gmon->c_str()),
                      Out);
  EXPECT_EQ(Rc, 0) << Out;
  EXPECT_NE(Out.find("%time"), std::string::npos);
  EXPECT_NE(Out.find("leaf"), std::string::npos);
  // prof never shows parent/child structure.
  EXPECT_EQ(Out.find("parents"), std::string::npos);
}

TEST_F(ToolsTest, TlcReportsDiagnostics) {
  std::string BadSrc = tempPath("bad.tl");
  cantFail(writeFileText(BadSrc, "fn main() { return x; }"));
  std::string Out;
  int Rc = runCommand(format("%s %s -o %s", TLC_PATH, BadSrc.c_str(),
                             tempPath("bad.tlx").c_str()),
                      Out);
  EXPECT_NE(Rc, 0);
  EXPECT_NE(Out.find("undeclared name 'x'"), std::string::npos) << Out;
  std::remove(BadSrc.c_str());
}

TEST_F(ToolsTest, TlcDisassembles) {
  std::string Out;
  int Rc = runCommand(format("%s %s --pg -o %s --disasm", TLC_PATH,
                             Src->c_str(), tempPath("d.tlx").c_str()),
                      Out);
  EXPECT_EQ(Rc, 0);
  EXPECT_NE(Out.find("mcount"), std::string::npos);
  EXPECT_NE(Out.find("leaf:"), std::string::npos);
  std::remove(tempPath("d.tlx").c_str());
}

TEST_F(ToolsTest, GprofRejectsMissingFiles) {
  std::string Out;
  int Rc = runCommand(format("%s %s /definitely/not/here.out", GPROF_PATH,
                             Img->c_str()),
                      Out);
  EXPECT_NE(Rc, 0);
}

TEST_F(ToolsTest, GprofSumWritesMergedFile) {
  std::string SumPath = tempPath("summed.out");
  std::string Out;
  int Rc = runCommand(format("%s -b --flat-only --sum %s %s %s %s",
                             GPROF_PATH, SumPath.c_str(), Img->c_str(),
                             Gmon->c_str(), Gmon->c_str()),
                      Out);
  EXPECT_EQ(Rc, 0) << Out;
  auto Summed = readGmonFile(SumPath);
  ASSERT_TRUE(static_cast<bool>(Summed));
  EXPECT_EQ(Summed->RunCount, 2u);
  std::remove(SumPath.c_str());
}

TEST_F(ToolsTest, GprofAnnotateSource) {
  std::string Out;
  int Rc = runCommand(format("%s --annotate %s %s %s", GPROF_PATH,
                             Src->c_str(), Img->c_str(), Gmon->c_str()),
                      Out);
  EXPECT_EQ(Rc, 0) << Out;
  EXPECT_NE(Out.find("seconds"), std::string::npos);
  EXPECT_NE(Out.find("fn middle(n)"), std::string::npos);
  // The call line carries the leaf call count.
  size_t Pos = Out.find("acc + leaf(i)");
  ASSERT_NE(Pos, std::string::npos);
  size_t LineStart = Out.rfind('\n', Pos) + 1;
  EXPECT_NE(Out.substr(LineStart, Pos - LineStart).find("400"),
            std::string::npos)
      << Out.substr(LineStart, 80);
}

TEST_F(ToolsTest, GprofDotExport) {
  std::string DotPath = tempPath("graph.dot");
  std::string Out;
  int Rc = runCommand(format("%s --dot %s -b %s %s", GPROF_PATH,
                             DotPath.c_str(), Img->c_str(), Gmon->c_str()),
                      Out);
  EXPECT_EQ(Rc, 0) << Out;
  auto Dot = readFileText(DotPath);
  ASSERT_TRUE(static_cast<bool>(Dot));
  EXPECT_NE(Dot->find("digraph callgraph"), std::string::npos);
  EXPECT_NE(Dot->find("\"middle\" -> \"leaf\""), std::string::npos);
  std::remove(DotPath.c_str());
}

TEST_F(ToolsTest, GprofExcludeTime) {
  std::string Out;
  int Rc = runCommand(format("%s -E leaf -b --flat-only %s %s", GPROF_PATH,
                             Img->c_str(), Gmon->c_str()),
                      Out);
  EXPECT_EQ(Rc, 0) << Out;
  EXPECT_NE(Out.find("excluded from the analysis"), std::string::npos)
      << Out;
}

TEST_F(ToolsTest, TlrunStackMode) {
  std::string Out;
  int Rc = runCommand(format("%s --stack -q --cycles-per-tick 100 %s",
                             TLRUN_PATH, Img->c_str()),
                      Out);
  EXPECT_EQ(Rc, 0) << Out;
  EXPECT_NE(Out.find("stack-sample profile"), std::string::npos);
  EXPECT_NE(Out.find("incl secs"), std::string::npos);
  EXPECT_NE(Out.find("main"), std::string::npos);
}

TEST_F(ToolsTest, TlcDumpAst) {
  std::string Out;
  int Rc = runCommand(format("%s --dump-ast %s", TLC_PATH, Src->c_str()),
                      Out);
  EXPECT_EQ(Rc, 0) << Out;
  EXPECT_NE(Out.find("fn middle(n)"), std::string::npos);
  EXPECT_NE(Out.find("call-direct"), std::string::npos);
}

TEST_F(ToolsTest, GprofStatsAndTraceOut) {
  // The observability surface end to end: --stats=FILE writes the flat
  // stats JSON, --trace-out writes a Chrome trace, and neither disturbs
  // the listings — the parallel run with telemetry on is byte-identical
  // to the sequential run without it.
  std::string StatsPath = tempPath("stats.json");
  std::string TracePath = tempPath("trace.json");

  // Pad the profile with distinct synthetic call sites so the symbolize
  // stage has enough raw records to fan out across the pool (the chunk
  // planner wants >= 1024 records per chunk).
  auto Padded = readGmonFile(*Gmon);
  ASSERT_TRUE(static_cast<bool>(Padded));
  for (uint32_t I = 0; I != 6000; ++I)
    Padded->Arcs.push_back({0x100000 + I, 0x200000 + (I % 7), 1});
  std::string BigGmon = tempPath("big_gmon.out");
  cantFail(writeGmonFile(BigGmon, *Padded));

  std::string Plain, Instrumented;
  int Rc = runCommand(format("%s --threads 1 %s %s", GPROF_PATH,
                             Img->c_str(), BigGmon.c_str()),
                      Plain);
  ASSERT_EQ(Rc, 0) << Plain;
  Rc = runCommand(format("%s --threads 8 --stats=%s --trace-out %s %s %s",
                         GPROF_PATH, StatsPath.c_str(), TracePath.c_str(),
                         Img->c_str(), BigGmon.c_str()),
                  Instrumented);
  ASSERT_EQ(Rc, 0) << Instrumented;
  EXPECT_EQ(Instrumented, Plain);

  // The stats JSON parses and carries the pipeline counters.
  auto Stats = readFileText(StatsPath);
  ASSERT_TRUE(static_cast<bool>(Stats));
  ASSERT_TRUE(validateJson(*Stats).hasValue()) << *Stats;
  EXPECT_NE(Stats->find("\"bench\": \"gprof_stats\""), std::string::npos);
  EXPECT_NE(Stats->find("analyzer.symbolize.raw_records"),
            std::string::npos);

  // The trace parses, and every §4 phase plus per-worker pool tracks
  // appear in it.
  auto Trace = readFileText(TracePath);
  ASSERT_TRUE(static_cast<bool>(Trace));
  auto TS = validateTraceJson(*Trace);
  ASSERT_TRUE(TS.hasValue()) << TS.message();
  EXPECT_EQ(TS->NameCounts.at("analyzer.symbolize"), 1u);
  EXPECT_EQ(TS->NameCounts.at("analyzer.assign"), 1u);
  EXPECT_EQ(TS->NameCounts.at("analyzer.propagate"), 1u);
  EXPECT_GE(TS->NameCounts.at("pool.job"), 1u);
  EXPECT_GE(TS->Tids.size(), 2u) << "expected main + worker tracks";
  EXPECT_NE(Trace->find("worker-0"), std::string::npos)
      << "expected named per-worker tracks";
  std::remove(StatsPath.c_str());
  std::remove(TracePath.c_str());
  std::remove(BigGmon.c_str());
}

TEST_F(ToolsTest, GprofBareStatsDumpsToStderr) {
  std::string Out;
  int Rc = runCommand(format("%s -b --flat-only --stats %s %s", GPROF_PATH,
                             Img->c_str(), Gmon->c_str()),
                      Out);
  EXPECT_EQ(Rc, 0) << Out;
  // Bare --stats must not swallow the image path as its value.
  EXPECT_NE(Out.find("cumulative"), std::string::npos) << Out;
  EXPECT_NE(Out.find("\"bench\": \"gprof_stats\""), std::string::npos)
      << Out;
}

TEST_F(ToolsTest, TlrunTelemetryEnvKnob) {
  std::string StatsPath = tempPath("tlrun_stats.json");
  std::string Out;
  int Rc = runCommand(format("GPROF_TELEMETRY=%s %s %s -q --gmon %s "
                             "--cycles-per-tick 100",
                             StatsPath.c_str(), TLRUN_PATH, Img->c_str(),
                             tempPath("knob.out").c_str()),
                      Out);
  ASSERT_EQ(Rc, 0) << Out;
  auto Stats = readFileText(StatsPath);
  ASSERT_TRUE(static_cast<bool>(Stats));
  ASSERT_TRUE(validateJson(*Stats).hasValue()) << *Stats;
  EXPECT_NE(Stats->find("\"bench\": \"tlrun_stats\""), std::string::npos);
  EXPECT_NE(Stats->find("runtime.mcount.records"), std::string::npos);
  EXPECT_NE(Stats->find("runtime.hist.ticks"), std::string::npos);
  std::remove(StatsPath.c_str());
  std::remove(tempPath("knob.out").c_str());

  // GPROF_TELEMETRY=- dumps to stderr instead.
  Rc = runCommand(format("GPROF_TELEMETRY=- %s %s -q --gmon %s",
                         TLRUN_PATH, Img->c_str(),
                         tempPath("knob2.out").c_str()),
                  Out);
  EXPECT_EQ(Rc, 0) << Out;
  EXPECT_NE(Out.find("\"bench\": \"tlrun_stats\""), std::string::npos)
      << Out;
  std::remove(tempPath("knob2.out").c_str());
}

TEST_F(ToolsTest, HelpTextsWork) {
  for (const char *Tool : {TLC_PATH, TLRUN_PATH, GPROF_PATH, PROF_PATH}) {
    std::string Out;
    int Rc = runCommand(format("%s --help", Tool), Out);
    EXPECT_EQ(Rc, 0);
    EXPECT_NE(Out.find("USAGE"), std::string::npos);
  }
}
