//===- tests/graph_test.cpp - Unit & property tests for the graph library -===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "graph/CallGraph.h"
#include "graph/CycleCollapse.h"
#include "graph/FeedbackArcs.h"
#include "graph/Generators.h"
#include "graph/Tarjan.h"

#include <gtest/gtest.h>

#include <set>

using namespace gprof;

namespace {

/// Brute-force reachability for SCC cross-checks.
std::vector<std::vector<bool>> reachability(const CallGraph &G) {
  size_t N = G.numNodes();
  std::vector<std::vector<bool>> R(N, std::vector<bool>(N, false));
  for (NodeId S = 0; S != N; ++S) {
    std::vector<NodeId> Work{S};
    R[S][S] = true;
    while (!Work.empty()) {
      NodeId V = Work.back();
      Work.pop_back();
      for (ArcId A : G.outArcs(V)) {
        NodeId W = G.arc(A).To;
        if (!R[S][W]) {
          R[S][W] = true;
          Work.push_back(W);
        }
      }
    }
  }
  return R;
}

} // namespace

//===----------------------------------------------------------------------===//
// CallGraph basics
//===----------------------------------------------------------------------===//

TEST(CallGraphTest, AddNodesAndArcs) {
  CallGraph G;
  NodeId A = G.addNode("a");
  NodeId B = G.addNode("b");
  G.addArc(A, B, 3);
  EXPECT_EQ(G.numNodes(), 2u);
  EXPECT_EQ(G.numArcs(), 1u);
  EXPECT_EQ(G.arc(0).Count, 3u);
  EXPECT_EQ(G.nodeName(A), "a");
  EXPECT_EQ(G.findNode("b"), B);
  EXPECT_EQ(G.findNode("zz"), InvalidNode);
}

TEST(CallGraphTest, DuplicateArcsMergeCounts) {
  CallGraph G;
  NodeId A = G.addNode("a");
  NodeId B = G.addNode("b");
  ArcId First = G.addArc(A, B, 2);
  ArcId Second = G.addArc(A, B, 5);
  EXPECT_EQ(First, Second);
  EXPECT_EQ(G.numArcs(), 1u);
  EXPECT_EQ(G.arc(First).Count, 7u);
}

TEST(CallGraphTest, StaticFlagClearedByDynamicCount) {
  CallGraph G;
  NodeId A = G.addNode("a");
  NodeId B = G.addNode("b");
  ArcId Arc1 = G.addArc(A, B, 0, /*IsStatic=*/true);
  EXPECT_TRUE(G.arc(Arc1).Static);
  G.addArc(A, B, 4, /*IsStatic=*/false);
  EXPECT_FALSE(G.arc(Arc1).Static);
  EXPECT_EQ(G.arc(Arc1).Count, 4u);
}

TEST(CallGraphTest, IncomingCallCountExcludesSelfArcs) {
  CallGraph G;
  NodeId A = G.addNode("a");
  NodeId B = G.addNode("b");
  G.addArc(A, B, 6);
  G.addArc(B, B, 4); // Self-recursion.
  EXPECT_EQ(G.incomingCallCount(B), 6u);
}

TEST(CallGraphTest, AcyclicityDetection) {
  CallGraph G;
  NodeId A = G.addNode("a");
  NodeId B = G.addNode("b");
  G.addArc(A, B, 1);
  EXPECT_TRUE(G.isAcyclic());
  G.addArc(B, A, 1);
  EXPECT_FALSE(G.isAcyclic());
}

TEST(CallGraphTest, SelfArcMakesCyclic) {
  CallGraph G;
  NodeId A = G.addNode("a");
  G.addArc(A, A, 1);
  EXPECT_FALSE(G.isAcyclic());
}

//===----------------------------------------------------------------------===//
// Tarjan SCC — the Figure 1 example
//===----------------------------------------------------------------------===//

namespace {

/// Builds the call graph of paper Figure 1: a root calling through two
/// levels into shared leaves.  Nodes are created in an order unrelated to
/// topological order to exercise the numbering.
///
/// Shape (10 nodes): 10 is the root; arcs flow downward:
///   10 -> 9, 10 -> 8; 9 -> 7, 9 -> 6; 8 -> 6, 8 -> 5;
///   7 -> 4, 7 -> 3; 6 -> 3; 5 -> 3, 5 -> 2; 3 -> 1; 4 -> 1; 2 -> 1.
CallGraph makeFigure1Graph(std::vector<NodeId> &ByNumber) {
  CallGraph G;
  ByNumber.assign(11, InvalidNode);
  // Deliberately scrambled creation order.
  for (uint32_t Number : {3u, 10u, 1u, 7u, 5u, 9u, 2u, 8u, 6u, 4u})
    ByNumber[Number] = G.addNode("n" + std::to_string(Number));
  auto Arc = [&](uint32_t From, uint32_t To) {
    G.addArc(ByNumber[From], ByNumber[To], 1);
  };
  Arc(10, 9);
  Arc(10, 8);
  Arc(9, 7);
  Arc(9, 6);
  Arc(8, 6);
  Arc(8, 5);
  Arc(7, 4);
  Arc(7, 3);
  Arc(6, 3);
  Arc(5, 3);
  Arc(5, 2);
  Arc(3, 1);
  Arc(4, 1);
  Arc(2, 1);
  return G;
}

} // namespace

TEST(TarjanTest, Figure1AllSingletons) {
  std::vector<NodeId> ByNumber;
  CallGraph G = makeFigure1Graph(ByNumber);
  SCCResult SCCs = findSCCs(G);
  EXPECT_EQ(SCCs.Components.size(), 10u);
  EXPECT_EQ(SCCs.numNontrivialComponents(), 0u);
}

TEST(TarjanTest, Figure1TopologicalProperty) {
  std::vector<NodeId> ByNumber;
  CallGraph G = makeFigure1Graph(ByNumber);
  SCCResult SCCs = findSCCs(G);
  std::vector<uint32_t> Numbers = topologicalNumbers(G, SCCs);
  EXPECT_TRUE(checkTopologicalProperty(G, Numbers, SCCs));
  // Every arc goes from a higher to a lower number, as in Figure 1.
  for (ArcId A = 0; A != G.numArcs(); ++A)
    EXPECT_GT(Numbers[G.arc(A).From], Numbers[G.arc(A).To]);
}

TEST(TarjanTest, Figure2CycleDetected) {
  // Figure 2 makes nodes 3 and 7 mutually recursive.
  std::vector<NodeId> ByNumber;
  CallGraph G = makeFigure1Graph(ByNumber);
  G.addArc(ByNumber[3], ByNumber[7], 1);
  SCCResult SCCs = findSCCs(G);
  EXPECT_EQ(SCCs.numNontrivialComponents(), 1u);
  EXPECT_EQ(SCCs.ComponentOf[ByNumber[3]], SCCs.ComponentOf[ByNumber[7]]);
  EXPECT_EQ(SCCs.Components.size(), 9u);
}

TEST(TarjanTest, SelfLoopIsSingletonComponent) {
  CallGraph G;
  NodeId A = G.addNode("a");
  G.addArc(A, A, 5);
  SCCResult SCCs = findSCCs(G);
  EXPECT_EQ(SCCs.Components.size(), 1u);
  EXPECT_EQ(SCCs.numNontrivialComponents(), 0u);
}

TEST(TarjanTest, DisconnectedGraphCovered) {
  CallGraph G;
  G.addNode("a");
  G.addNode("b");
  G.addNode("c");
  SCCResult SCCs = findSCCs(G);
  EXPECT_EQ(SCCs.Components.size(), 3u);
  std::set<uint32_t> Seen(SCCs.ComponentOf.begin(), SCCs.ComponentOf.end());
  EXPECT_EQ(Seen.size(), 3u);
}

TEST(TarjanTest, DeepChainNoStackOverflow) {
  // 200k-node chain: a recursive Tarjan would blow the stack here.
  CallGraph G;
  const uint32_t N = 200000;
  for (uint32_t I = 0; I != N; ++I)
    G.addNode("f" + std::to_string(I));
  for (uint32_t I = 0; I + 1 != N; ++I)
    G.addArc(I, I + 1, 1);
  SCCResult SCCs = findSCCs(G);
  EXPECT_EQ(SCCs.Components.size(), N);
  std::vector<uint32_t> Numbers = topologicalNumbers(G, SCCs);
  EXPECT_TRUE(checkTopologicalProperty(G, Numbers, SCCs));
}

TEST(TarjanTest, BigCycleIsOneComponent) {
  CallGraph G;
  const uint32_t N = 1000;
  for (uint32_t I = 0; I != N; ++I)
    G.addNode("f" + std::to_string(I));
  for (uint32_t I = 0; I != N; ++I)
    G.addArc(I, (I + 1) % N, 1);
  SCCResult SCCs = findSCCs(G);
  EXPECT_EQ(SCCs.Components.size(), 1u);
  EXPECT_EQ(SCCs.Components[0].size(), N);
}

//===----------------------------------------------------------------------===//
// Property tests: SCC vs reachability, topological numbering on random
// graphs
//===----------------------------------------------------------------------===//

class TarjanPropertyTest : public testing::TestWithParam<uint64_t> {};

TEST_P(TarjanPropertyTest, SCCMatchesMutualReachability) {
  CallGraph G = makeRandomGraph(/*NumNodes=*/40, /*NumArcs=*/90,
                                /*MaxCount=*/10, /*SelfArcProb=*/0.05,
                                /*Seed=*/GetParam());
  SCCResult SCCs = findSCCs(G);
  auto R = reachability(G);
  for (NodeId A = 0; A != G.numNodes(); ++A)
    for (NodeId B = 0; B != G.numNodes(); ++B) {
      bool SameComponent = SCCs.ComponentOf[A] == SCCs.ComponentOf[B];
      bool MutuallyReachable = R[A][B] && R[B][A];
      EXPECT_EQ(SameComponent, MutuallyReachable)
          << "nodes " << A << " and " << B << " seed " << GetParam();
    }
}

TEST_P(TarjanPropertyTest, TopologicalNumbersValid) {
  CallGraph G = makeRandomGraph(60, 150, 10, 0.05, GetParam() + 1000);
  SCCResult SCCs = findSCCs(G);
  std::vector<uint32_t> Numbers = topologicalNumbers(G, SCCs);
  EXPECT_TRUE(checkTopologicalProperty(G, Numbers, SCCs));
}

TEST_P(TarjanPropertyTest, DagsHaveOnlySingletons) {
  CallGraph G = makeRandomDag(50, 120, 10, GetParam() + 2000);
  SCCResult SCCs = findSCCs(G);
  EXPECT_EQ(SCCs.numNontrivialComponents(), 0u);
  EXPECT_TRUE(G.isAcyclic());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TarjanPropertyTest,
                         testing::Range<uint64_t>(0, 12));

//===----------------------------------------------------------------------===//
// Cycle collapse
//===----------------------------------------------------------------------===//

TEST(CycleCollapseTest, Figure3Shape) {
  std::vector<NodeId> ByNumber;
  CallGraph G = makeFigure1Graph(ByNumber);
  G.addArc(ByNumber[3], ByNumber[7], 1); // Figure 2's cycle {3,7}.
  SCCResult SCCs = findSCCs(G);
  CondensedGraph Cond = collapseCycles(G, SCCs);

  // 9 condensed nodes (10 routines, one 2-cycle).
  EXPECT_EQ(Cond.Dag.numNodes(), 9u);
  EXPECT_TRUE(Cond.Dag.isAcyclic());

  NodeId CycleNode = Cond.CondensedOf[ByNumber[3]];
  EXPECT_EQ(CycleNode, Cond.CondensedOf[ByNumber[7]]);
  EXPECT_TRUE(Cond.isCycle(CycleNode));
  EXPECT_EQ(Cond.Members[CycleNode].size(), 2u);
}

TEST(CycleCollapseTest, InterArcCountsMerge) {
  CallGraph G;
  NodeId A = G.addNode("a");
  NodeId B = G.addNode("b");
  NodeId C = G.addNode("c");
  NodeId D = G.addNode("d");
  // B and C form a cycle; A calls both members.
  G.addArc(B, C, 10);
  G.addArc(C, B, 20);
  G.addArc(A, B, 3);
  G.addArc(A, C, 4);
  G.addArc(C, D, 5);
  SCCResult SCCs = findSCCs(G);
  CondensedGraph Cond = collapseCycles(G, SCCs);

  EXPECT_EQ(Cond.Dag.numNodes(), 3u);
  NodeId CycleNode = Cond.CondensedOf[B];
  ArcId IntoCycle = Cond.Dag.findArc(Cond.CondensedOf[A], CycleNode);
  ASSERT_NE(IntoCycle, InvalidNode);
  EXPECT_EQ(Cond.Dag.arc(IntoCycle).Count, 7u); // 3 + 4 merged.
  ArcId OutOfCycle = Cond.Dag.findArc(CycleNode, Cond.CondensedOf[D]);
  ASSERT_NE(OutOfCycle, InvalidNode);
  EXPECT_EQ(Cond.Dag.arc(OutOfCycle).Count, 5u);
}

TEST(CycleCollapseTest, CondensedOrderIsReverseTopological) {
  for (uint64_t Seed = 0; Seed != 8; ++Seed) {
    CallGraph G = makeRandomGraph(50, 140, 10, 0.05, Seed + 3000);
    SCCResult SCCs = findSCCs(G);
    CondensedGraph Cond = collapseCycles(G, SCCs);
    for (ArcId A = 0; A != Cond.Dag.numArcs(); ++A)
      EXPECT_GT(Cond.Dag.arc(A).From, Cond.Dag.arc(A).To);
  }
}

//===----------------------------------------------------------------------===//
// Feedback arc selection
//===----------------------------------------------------------------------===//

TEST(FeedbackArcsTest, SimpleTwoCycle) {
  CallGraph G;
  NodeId A = G.addNode("a");
  NodeId B = G.addNode("b");
  G.addArc(A, B, 100);
  G.addArc(B, A, 2); // The cheap back arc should be removed.
  FeedbackArcResult R = selectFeedbackArcsGreedy(G, 10);
  EXPECT_TRUE(R.Acyclic);
  ASSERT_EQ(R.RemovedArcs.size(), 1u);
  EXPECT_EQ(G.arc(R.RemovedArcs[0]).Count, 2u);
  EXPECT_EQ(R.RemovedCount, 2u);
}

TEST(FeedbackArcsTest, BoundStopsGreedy) {
  // Two independent 2-cycles but a budget of one arc.
  CallGraph G;
  NodeId A = G.addNode("a");
  NodeId B = G.addNode("b");
  NodeId C = G.addNode("c");
  NodeId D = G.addNode("d");
  G.addArc(A, B, 10);
  G.addArc(B, A, 1);
  G.addArc(C, D, 10);
  G.addArc(D, C, 1);
  FeedbackArcResult R = selectFeedbackArcsGreedy(G, 1);
  EXPECT_FALSE(R.Acyclic);
  EXPECT_EQ(R.RemovedArcs.size(), 1u);
}

TEST(FeedbackArcsTest, AcyclicInputRemovesNothing) {
  CallGraph G = makeRandomDag(30, 60, 5, 42);
  FeedbackArcResult R = selectFeedbackArcsGreedy(G, 10);
  EXPECT_TRUE(R.Acyclic);
  EXPECT_TRUE(R.RemovedArcs.empty());
}

TEST(FeedbackArcsTest, SelfArcsIgnored) {
  CallGraph G;
  NodeId A = G.addNode("a");
  G.addArc(A, A, 50);
  FeedbackArcResult R = selectFeedbackArcsGreedy(G, 10);
  EXPECT_TRUE(R.Acyclic); // Self arcs never participate.
  EXPECT_TRUE(R.RemovedArcs.empty());
}

TEST(FeedbackArcsTest, ExactFindsMinimum) {
  // A 4-cycle with a chord: one removal suffices, and the exact search
  // must find a single-arc solution.
  CallGraph G;
  std::vector<NodeId> N;
  for (int I = 0; I != 4; ++I)
    N.push_back(G.addNode("n" + std::to_string(I)));
  G.addArc(N[0], N[1], 5);
  G.addArc(N[1], N[2], 5);
  G.addArc(N[2], N[3], 5);
  G.addArc(N[3], N[0], 5);
  FeedbackArcResult R = selectFeedbackArcsExact(G, 4);
  EXPECT_TRUE(R.Acyclic);
  EXPECT_EQ(R.RemovedArcs.size(), 1u);
}

TEST(FeedbackArcsTest, ExactRespectsBound) {
  // Two disjoint cycles need two removals; a bound of one must fail.
  CallGraph G;
  NodeId A = G.addNode("a");
  NodeId B = G.addNode("b");
  NodeId C = G.addNode("c");
  NodeId D = G.addNode("d");
  G.addArc(A, B, 1);
  G.addArc(B, A, 1);
  G.addArc(C, D, 1);
  G.addArc(D, C, 1);
  FeedbackArcResult R = selectFeedbackArcsExact(G, 1);
  EXPECT_FALSE(R.Acyclic);
  FeedbackArcResult R2 = selectFeedbackArcsExact(G, 2);
  EXPECT_TRUE(R2.Acyclic);
  EXPECT_EQ(R2.RemovedArcs.size(), 2u);
}

TEST(FeedbackArcsTest, GreedyNeverWorseThanExactByMuchOnSmallGraphs) {
  for (uint64_t Seed = 0; Seed != 6; ++Seed) {
    CallGraph G = makeRandomGraph(8, 14, 20, 0.0, Seed + 500);
    FeedbackArcResult Exact = selectFeedbackArcsExact(G, 8);
    FeedbackArcResult Greedy = selectFeedbackArcsGreedy(G, 14);
    ASSERT_TRUE(Exact.Acyclic);
    ASSERT_TRUE(Greedy.Acyclic);
    EXPECT_GE(Greedy.RemovedArcs.size(), Exact.RemovedArcs.size());
  }
}

TEST(FeedbackArcsTest, RemoveArcsProducesFilteredCopy) {
  CallGraph G;
  NodeId A = G.addNode("a");
  NodeId B = G.addNode("b");
  ArcId AB = G.addArc(A, B, 3);
  G.addArc(B, A, 4);
  CallGraph H = removeArcs(G, {AB});
  EXPECT_EQ(H.numArcs(), 1u);
  EXPECT_EQ(H.findArc(A, B), InvalidNode);
  ArcId BA = H.findArc(B, A);
  ASSERT_NE(BA, InvalidNode);
  EXPECT_EQ(H.arc(BA).Count, 4u);
}

TEST(FeedbackArcsTest, KernelLikeGraphBreaksWithFewArcs) {
  CallGraph G = makeKernelLikeGraph(4, 6, 3, 77);
  SCCResult Before = findSCCs(G);
  // The back arcs close at most a few cycles; the greedy heuristic should
  // restore acyclicity within the back-arc budget.
  FeedbackArcResult R = selectFeedbackArcsGreedy(G, 3);
  if (Before.numNontrivialComponents() == 0) {
    EXPECT_TRUE(R.RemovedArcs.empty());
  } else {
    EXPECT_TRUE(R.Acyclic);
    EXPECT_LE(R.RemovedArcs.size(), 3u);
    // Removed arcs are the low-count ones (info loss is small).
    for (ArcId A : R.RemovedArcs)
      EXPECT_LE(G.arc(A).Count, 5u);
  }
}

//===----------------------------------------------------------------------===//
// Generators sanity
//===----------------------------------------------------------------------===//

TEST(GeneratorsTest, DagIsAcyclic) {
  for (uint64_t Seed = 0; Seed != 5; ++Seed)
    EXPECT_TRUE(makeRandomDag(30, 80, 10, Seed).isAcyclic());
}

TEST(GeneratorsTest, LayeredGraphIsAcyclicAndRooted) {
  CallGraph G = makeLayeredGraph(5, 8, 3, 9);
  EXPECT_TRUE(G.isAcyclic());
  NodeId Main = G.findNode("main");
  ASSERT_NE(Main, InvalidNode);
  EXPECT_FALSE(G.outArcs(Main).empty());
  EXPECT_TRUE(G.inArcs(Main).empty());
}

TEST(GeneratorsTest, DeterministicForSameSeed) {
  CallGraph A = makeRandomGraph(20, 40, 10, 0.1, 5);
  CallGraph B = makeRandomGraph(20, 40, 10, 0.1, 5);
  ASSERT_EQ(A.numArcs(), B.numArcs());
  for (ArcId I = 0; I != A.numArcs(); ++I) {
    EXPECT_EQ(A.arc(I).From, B.arc(I).From);
    EXPECT_EQ(A.arc(I).To, B.arc(I).To);
    EXPECT_EQ(A.arc(I).Count, B.arc(I).Count);
  }
}
