//===- tests/cct_test.cpp - Differential oracle for the CCT recorder ------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pins the lock-free per-thread CctRecorder against an obviously-correct
/// std::map reference: both replay the same randomized call/return/tick
/// streams and must produce node-for-node identical canonical trees — at
/// one recorder, and through a shared Monitor at 1/2/8 threads (the
/// merged extract() against the merge of the per-stream references).
/// Also exercises the edge semantics the reference makes explicit:
/// unmatched returns, moncontrol-suppressed frames, node-cap overflow
/// attribution, and the reset()-mid-run spine rebuild.
///
/// Thread-safety claims are only fully proven instrumented; the
/// gprof_cct_smoke ctest target runs this suite and is meant to be
/// included in the TSan smoke set (see tests/CMakeLists.txt).
///
//===----------------------------------------------------------------------===//

#include "gmon/GmonFile.h"
#include "runtime/CctRecorder.h"
#include "runtime/Monitor.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <map>
#include <thread>
#include <tuple>
#include <vector>

using namespace gprof;

namespace {

/// The reference recorder: same event semantics as CctRecorder, written
/// for clarity, not speed — a std::map keyed (parent, site, callee) and
/// no capacity limit.  Emits raw creation-order nodes; the canonical
/// form is obtained by folding through ProfileData::addContextTree, so
/// the comparison also goes through the exact normalizer production
/// merges use.
class RefCct {
public:
  RefCct() { Nodes.push_back({0, 0, CctRootParent, 0, 0}); }

  void enter(Address FromPc, Address SelfPc, bool Record) {
    if (!Record) {
      Stack.push_back({FromPc, SelfPc, cur(), false});
      return;
    }
    auto Key = std::make_tuple(cur(), FromPc, SelfPc);
    auto [It, New] = Index.try_emplace(Key, uint32_t(Nodes.size()));
    if (New)
      Nodes.push_back({FromPc, SelfPc, cur(), 0, 0});
    ++Nodes[It->second].Calls;
    Stack.push_back({FromPc, SelfPc, It->second, true});
  }

  void leave(Address SelfPc) {
    if (!Stack.empty() && Stack.back().SelfPc == SelfPc)
      Stack.pop_back();
  }

  void tick() {
    if (cur() != 0)
      ++Nodes[cur()].Ticks;
  }

  /// Raw CctNode vector (virtual root elided, creation order, so every
  /// parent precedes its children).
  std::vector<CctNode> emitRaw() const {
    std::vector<CctNode> Out;
    for (size_t I = 1; I != Nodes.size(); ++I) {
      const Node &N = Nodes[I];
      CctNode C;
      C.Parent = N.Parent == 0 ? CctRootParent : N.Parent - 1;
      C.FromPc = N.FromPc;
      C.SelfPc = N.SelfPc;
      C.Calls = N.Calls;
      C.Ticks = N.Ticks;
      Out.push_back(C);
    }
    return Out;
  }

private:
  struct Node {
    Address FromPc;
    Address SelfPc;
    uint32_t Parent;
    uint64_t Calls;
    uint64_t Ticks;
  };
  struct Frame {
    Address FromPc;
    Address SelfPc;
    uint32_t Node;
    bool Counted;
  };

  uint32_t cur() const { return Stack.empty() ? 0 : Stack.back().Node; }

  std::vector<Node> Nodes;
  std::vector<Frame> Stack;
  std::map<std::tuple<uint32_t, Address, Address>, uint32_t> Index;
};

/// Canonicalizes a raw node vector through the production normalizer.
std::vector<CctNode> canonical(const std::vector<CctNode> &Raw) {
  ProfileData D;
  D.addContextTree(Raw);
  return D.Contexts;
}

struct Ev {
  enum Kind { Call, Ret, Tick } K;
  Address FromPc = 0, SelfPc = 0;
};

/// A randomized mostly-balanced event stream over a small routine
/// alphabet.  Small alphabets force path sharing (deep sibling chains and
/// move-to-front churn); occasional bogus returns exercise the unmatched
/// path.
std::vector<Ev> makeStream(uint64_t Seed, size_t Len) {
  SplitMix64 Rng(Seed);
  std::vector<Ev> Out;
  std::vector<Address> Depth; // SelfPc of each open frame.
  for (size_t I = 0; I != Len; ++I) {
    uint64_t R = Rng.nextBelow(100);
    if (R < 40 && Depth.size() < 24) {
      Address Self = 0x1000 + Rng.nextBelow(7) * 0x100;
      Address From = 0x2000 + Rng.nextBelow(5) * 0x40;
      Out.push_back({Ev::Call, From, Self});
      Depth.push_back(Self);
    } else if (R < 70 && !Depth.empty()) {
      Out.push_back({Ev::Ret, 0, Depth.back()});
      Depth.pop_back();
    } else if (R < 75) {
      // A return that matches no open frame: both recorders must shrug.
      Out.push_back({Ev::Ret, 0, 0xdead});
    } else {
      Out.push_back({Ev::Tick, 0, 0});
    }
  }
  while (!Depth.empty()) {
    Out.push_back({Ev::Ret, 0, Depth.back()});
    Depth.pop_back();
  }
  return Out;
}

void expectTreesEqual(const std::vector<CctNode> &A,
                      const std::vector<CctNode> &B,
                      const std::string &What) {
  ASSERT_EQ(A.size(), B.size()) << What;
  for (size_t I = 0; I != A.size(); ++I) {
    EXPECT_EQ(A[I].Parent, B[I].Parent) << What << " node " << I;
    EXPECT_EQ(A[I].FromPc, B[I].FromPc) << What << " node " << I;
    EXPECT_EQ(A[I].SelfPc, B[I].SelfPc) << What << " node " << I;
    EXPECT_EQ(A[I].Calls, B[I].Calls) << What << " node " << I;
    EXPECT_EQ(A[I].Ticks, B[I].Ticks) << What << " node " << I;
  }
}

} // namespace

class CctDifferentialTest : public testing::TestWithParam<uint64_t> {};

TEST_P(CctDifferentialTest, RecorderMatchesReferenceNodeForNode) {
  std::vector<Ev> Stream = makeStream(GetParam() * 7919 + 1, 20000);
  CctRecorder Rec;
  RefCct Ref;
  for (const Ev &E : Stream) {
    switch (E.K) {
    case Ev::Call:
      Rec.enter(E.FromPc, E.SelfPc, true);
      Ref.enter(E.FromPc, E.SelfPc, true);
      break;
    case Ev::Ret:
      Rec.leave(E.SelfPc);
      Ref.leave(E.SelfPc);
      break;
    case Ev::Tick:
      Rec.tick();
      Ref.tick();
      break;
    }
  }
  std::vector<CctNode> Got = Rec.snapshot();
  expectTreesEqual(Got, canonical(Ref.emitRaw()), "vs reference");
  // snapshot() is already in canonical form: normalizing is the identity.
  expectTreesEqual(Got, canonical(Got), "canonical idempotence");
  EXPECT_FALSE(Rec.overflowed());
}

TEST_P(CctDifferentialTest, MonitorMergeMatchesReferenceAcrossThreads) {
  for (unsigned K : {1u, 2u, 8u}) {
    std::vector<std::vector<Ev>> Streams;
    for (unsigned T = 0; T != K; ++T)
      Streams.push_back(makeStream(GetParam() * 131 + T + 2, 8000));

    MonitorOptions MO;
    MO.RecordContexts = true;
    Monitor Mon(0x1000, 0x3000, MO);
    std::vector<std::thread> Workers;
    for (unsigned T = 0; T != K; ++T)
      Workers.emplace_back([&, T] {
        for (const Ev &E : Streams[T]) {
          switch (E.K) {
          case Ev::Call:
            Mon.onCall(E.FromPc, E.SelfPc);
            break;
          case Ev::Ret:
            Mon.onReturn(E.SelfPc);
            break;
          case Ev::Tick:
            Mon.onTick(0x1000);
            break;
          }
        }
      });
    for (std::thread &W : Workers)
      W.join();

    ProfileData RefData;
    for (unsigned T = 0; T != K; ++T) {
      RefCct Ref;
      for (const Ev &E : Streams[T]) {
        switch (E.K) {
        case Ev::Call:
          Ref.enter(E.FromPc, E.SelfPc, true);
          break;
        case Ev::Ret:
          Ref.leave(E.SelfPc);
          break;
        case Ev::Tick:
          Ref.tick();
          break;
        }
      }
      RefData.addContextTree(Ref.emitRaw());
    }

    expectTreesEqual(Mon.extract().Contexts, RefData.Contexts,
                     "merged, k=" + std::to_string(K));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CctDifferentialTest,
                         testing::Range<uint64_t>(0, 6));

//===----------------------------------------------------------------------===//
// Edge semantics
//===----------------------------------------------------------------------===//

TEST(CctRecorderTest, SuppressedFramesKeepBalanceAndAttributeToAncestor) {
  CctRecorder Rec;
  Rec.enter(0x10, 0x100, true);  // a
  Rec.enter(0x20, 0x200, false); // b, moncontrol off: no node
  Rec.tick();                    // attributes to a, the nearest recorded
  Rec.enter(0x30, 0x300, false); // c, still off
  Rec.tick();                    // still a
  Rec.leave(0x300);
  Rec.leave(0x200);
  Rec.tick(); // back in a, recorded
  Rec.leave(0x100);

  std::vector<CctNode> T = Rec.snapshot();
  ASSERT_EQ(T.size(), 1u);
  EXPECT_EQ(T[0].SelfPc, 0x100u);
  EXPECT_EQ(T[0].Calls, 1u);
  EXPECT_EQ(T[0].Ticks, 3u);
  EXPECT_EQ(Rec.stats().Enters, 3u);
}

TEST(CctRecorderTest, UnmatchedReturnsAreCountedAndIgnored) {
  CctRecorder Rec;
  Rec.leave(0x999); // empty stack
  Rec.enter(0x10, 0x100, true);
  Rec.leave(0x555); // wrong callee: not our frame
  Rec.tick();
  Rec.leave(0x100);
  CctStats S = Rec.stats();
  EXPECT_EQ(S.UnmatchedReturns, 2u);
  EXPECT_EQ(S.Returns, 1u);
  std::vector<CctNode> T = Rec.snapshot();
  ASSERT_EQ(T.size(), 1u);
  EXPECT_EQ(T[0].Ticks, 1u);
}

TEST(CctRecorderTest, NodeCapAttributesOverflowToNearestAncestor) {
  CctRecorder Rec(2); // room for two contexts
  Rec.enter(0x10, 0x100, true);
  Rec.enter(0x20, 0x200, true);
  Rec.enter(0x30, 0x300, true); // third path: dropped
  Rec.tick();                   // attributes to the 0x200 context
  Rec.leave(0x300);
  Rec.leave(0x200);
  Rec.leave(0x100);

  EXPECT_TRUE(Rec.overflowed());
  EXPECT_EQ(Rec.stats().Dropped, 1u);
  std::vector<CctNode> T = Rec.snapshot();
  ASSERT_EQ(T.size(), 2u);
  EXPECT_EQ(T[1].SelfPc, 0x200u);
  EXPECT_EQ(T[1].Ticks, 1u);

  // Tick conservation: every tick() landed somewhere visible.
  CctStats S = Rec.stats();
  uint64_t InTree = 0;
  for (const CctNode &N : T)
    InTree += N.Ticks;
  EXPECT_EQ(InTree + S.RootTicks, S.Ticks);
}

TEST(CctRecorderTest, ResetMidRunRebuildsTheActiveSpine) {
  CctRecorder Rec;
  Rec.enter(0x10, 0x100, true);
  Rec.enter(0x20, 0x200, true);
  Rec.tick();
  Rec.tick();
  Rec.reset(); // slice boundary: counts go, the active path stays hot
  Rec.tick();  // must attribute to the rebuilt 0x100 > 0x200 context
  Rec.leave(0x200);
  Rec.leave(0x100);

  std::vector<CctNode> T = Rec.snapshot();
  ASSERT_EQ(T.size(), 2u);
  EXPECT_EQ(T[0].SelfPc, 0x100u);
  EXPECT_EQ(T[0].Calls, 0u); // the call predates the slice
  EXPECT_EQ(T[0].Ticks, 0u);
  EXPECT_EQ(T[1].SelfPc, 0x200u);
  EXPECT_EQ(T[1].Parent, 0u);
  EXPECT_EQ(T[1].Ticks, 1u);
}

TEST(CctRecorderTest, SnapshotPrunesSubtreesWithNoCounts) {
  CctRecorder Rec;
  Rec.enter(0x10, 0x100, true);
  Rec.enter(0x20, 0x200, true);
  Rec.leave(0x200);
  Rec.leave(0x100);
  Rec.reset(); // nothing active: the whole tree resets away
  EXPECT_TRUE(Rec.snapshot().empty());
}
