//===- tests/astprinter_test.cpp - Tests for the AST dumper ---------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "lang/ASTPrinter.h"
#include "lang/Parser.h"
#include "lang/Sema.h"

#include <gtest/gtest.h>

using namespace gprof;

namespace {

Program compileOk(std::string_view Src) {
  DiagnosticEngine Diags;
  Program P = parseTL(Src, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.renderAll("<test>");
  analyze(P, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.renderAll("<test>");
  return P;
}

const Expr &returnExprOf(const Program &P, size_t FnIndex = 0) {
  const auto &Ret =
      static_cast<const ReturnStmt &>(*P.Functions[FnIndex].Body->Body[0]);
  return *Ret.Value;
}

} // namespace

TEST(ASTPrinterTest, PrecedenceVisibleInSExpr) {
  Program P = compileOk("fn main() { return 1 + 2 * 3; }");
  EXPECT_EQ(printExpr(returnExprOf(P)),
            "(+ (int 1) (* (int 2) (int 3)))");
}

TEST(ASTPrinterTest, ParenthesesOverridePrecedence) {
  Program P = compileOk("fn main() { return (1 + 2) * 3; }");
  EXPECT_EQ(printExpr(returnExprOf(P)),
            "(* (+ (int 1) (int 2)) (int 3))");
}

TEST(ASTPrinterTest, ComparisonAndLogic) {
  Program P = compileOk("fn main() { return 1 < 2 && 3 >= 4 || !0; }");
  EXPECT_EQ(printExpr(returnExprOf(P)),
            "(|| (&& (< (int 1) (int 2)) (>= (int 3) (int 4))) "
            "(not (int 0)))");
}

TEST(ASTPrinterTest, BindingsAnnotated) {
  Program P = compileOk(R"(
    var g = 1;
    fn f(a) { return a + g; }
    fn main() { return f(1); }
  )");
  EXPECT_EQ(printExpr(returnExprOf(P)),
            "(+ (var a:local0) (var g:global0))");
}

TEST(ASTPrinterTest, CallsShowDirectness) {
  Program P = compileOk(R"(
    fn f(x) { return x; }
    fn main() {
      var g = &f;
      return f(g(1));
    }
  )");
  const auto &Ret =
      static_cast<const ReturnStmt &>(*P.Functions[1].Body->Body[1]);
  EXPECT_EQ(printExpr(*Ret.Value),
            "(call-direct (var f:fn0) (call-indirect (var g:local0) "
            "(int 1)))");
}

TEST(ASTPrinterTest, ProgramDumpShape) {
  Program P = compileOk(R"(
    var counter = 3;
    fn bump(by) {
      counter = counter + by;
      if (counter > 10) { return 1; }
      while (by > 0) { by = by - 1; }
      print counter;
      return 0;
    }
    fn main() { return bump(2); }
  )");
  std::string Dump = printAST(P);
  EXPECT_NE(Dump.find("global counter = 3"), std::string::npos);
  EXPECT_NE(Dump.find("fn bump(by) [1 slots]"), std::string::npos);
  EXPECT_NE(Dump.find("if (> (var counter:global0) (int 10))"),
            std::string::npos);
  EXPECT_NE(Dump.find("while (> (var by:local0) (int 0))"),
            std::string::npos);
  EXPECT_NE(Dump.find("print (var counter:global0)"), std::string::npos);
  EXPECT_NE(Dump.find("expr (= counter:global0"), std::string::npos);
}

TEST(ASTPrinterTest, UnaryNegation) {
  Program P = compileOk("fn main() { return -5; }");
  EXPECT_EQ(printExpr(returnExprOf(P)), "(neg (int 5))");
}

TEST(ASTPrinterTest, FunctionAddressLiteral) {
  Program P = compileOk(R"(
    fn f() { return 0; }
    fn main() { return (&f)(); }
  )");
  const auto &Ret =
      static_cast<const ReturnStmt &>(*P.Functions[1].Body->Body[0]);
  EXPECT_EQ(printExpr(*Ret.Value), "(call-indirect (&f))");
}
