//===- tests/inliner_test.cpp - Inline expansion (§6) tests ---------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "core/Analyzer.h"
#include "lang/ASTPrinter.h"
#include "lang/Inliner.h"
#include "lang/Parser.h"
#include "lang/Sema.h"
#include "runtime/Monitor.h"
#include "vm/CodeGen.h"
#include "vm/VM.h"

#include <gtest/gtest.h>

using namespace gprof;

namespace {

Program parseOk(std::string_view Src, DiagnosticEngine &Diags) {
  Program P = parseTL(Src, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.renderAll("<test>");
  return P;
}

/// Runs a source and returns (exit value, printed values).
std::pair<int64_t, std::vector<int64_t>> runSource(std::string_view Src,
                                                   CodeGenOptions CG = {}) {
  Image Img = compileTLOrDie(Src, CG);
  VM Machine(Img);
  RunResult R = cantFail(Machine.run());
  return {R.ExitValue, R.Printed};
}

} // namespace

//===----------------------------------------------------------------------===//
// Mechanics
//===----------------------------------------------------------------------===//

TEST(InlinerTest, CloneExprIsDeep) {
  DiagnosticEngine Diags;
  Program P = parseOk("fn main() { return 1 + 2 * f(3); } "
                      "fn f(x) { return x; }",
                      Diags);
  const auto &Ret =
      static_cast<const ReturnStmt &>(*P.Functions[0].Body->Body[0]);
  ExprPtr Copy = cloneExpr(*Ret.Value);
  EXPECT_EQ(printExpr(*Copy), printExpr(*Ret.Value));
  EXPECT_NE(Copy.get(), Ret.Value.get());
}

TEST(InlinerTest, SimpleCallExpanded) {
  DiagnosticEngine Diags;
  Program P = parseOk(R"(
    fn square(x) { return x * x; }
    fn main() { return square(5); }
  )",
                      Diags);
  unsigned N = inlineCalls(P, {"square"}, Diags);
  EXPECT_FALSE(Diags.hasErrors());
  EXPECT_EQ(N, 1u);
  const auto &Ret =
      static_cast<const ReturnStmt &>(*P.Functions[1].Body->Body[0]);
  EXPECT_EQ(printExpr(*Ret.Value), "(* (int 5) (int 5))");
}

TEST(InlinerTest, SideEffectingArgNotDuplicated) {
  DiagnosticEngine Diags;
  Program P = parseOk(R"(
    fn square(x) { return x * x; }
    fn bump() { return 1; }
    fn main() { return square(bump()); }
  )",
                      Diags);
  // square uses x twice and bump() is a call: the site must be skipped.
  unsigned N = inlineCalls(P, {"square"}, Diags);
  EXPECT_FALSE(Diags.hasErrors());
  EXPECT_EQ(N, 0u);
}

TEST(InlinerTest, SingleUseParamTakesComplexArg) {
  DiagnosticEngine Diags;
  Program P = parseOk(R"(
    fn negate(x) { return 0 - x; }
    fn f() { return 3; }
    fn main() { return negate(f()); }
  )",
                      Diags);
  unsigned N = inlineCalls(P, {"negate"}, Diags);
  EXPECT_EQ(N, 1u);
  const auto &Ret =
      static_cast<const ReturnStmt &>(*P.Functions[2].Body->Body[0]);
  // (Pre-Sema the call prints as indirect; Sema later marks it direct.)
  EXPECT_EQ(printExpr(*Ret.Value),
            "(- (int 0) (call-indirect (var f)))");
}

TEST(InlinerTest, SelfRecursiveTargetLeftAlone) {
  DiagnosticEngine Diags;
  Program P = parseOk(R"(
    fn f(x) { return f(x); }
    fn main() { return 0; }
  )",
                      Diags);
  // f's own body is never rewritten, so this cannot loop.
  unsigned N = inlineCalls(P, {"f"}, Diags);
  EXPECT_FALSE(Diags.hasErrors());
  EXPECT_EQ(N, 0u);
}

TEST(InlinerTest, NonInlinableDiagnosed) {
  DiagnosticEngine Diags;
  Program P = parseOk(R"(
    fn loops(n) { var i = 0; while (i < n) { i = i + 1; } return i; }
    fn main() { return loops(3); }
  )",
                      Diags);
  inlineCalls(P, {"loops"}, Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(InlinerTest, GlobalUsingBodyDiagnosed) {
  DiagnosticEngine Diags;
  Program P = parseOk(R"(
    var g = 1;
    fn addg(x) { return x + g; }
    fn main() { return addg(2); }
  )",
                      Diags);
  inlineCalls(P, {"addg"}, Diags);
  EXPECT_TRUE(Diags.hasErrors()); // Capture-hazardous; rejected.
}

TEST(InlinerTest, UnknownNameDiagnosed) {
  DiagnosticEngine Diags;
  Program P = parseOk("fn main() { return 0; }", Diags);
  inlineCalls(P, {"ghost"}, Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

//===----------------------------------------------------------------------===//
// Behavior preservation and the §6 profiling trade-off
//===----------------------------------------------------------------------===//

namespace {

const char *TradeoffProgram = R"(
  fn fmt(x) { return x * 10 + 7; }
  fn output(n) {
    var acc = 0;
    var i = 0;
    while (i < n) {
      acc = acc + fmt(i);
      i = i + 1;
    }
    return acc;
  }
  fn main() {
    print output(2000);
    return 0;
  }
)";

} // namespace

TEST(InlinerTest, BehaviorPreserved) {
  CodeGenOptions Inlined;
  Inlined.InlineFunctions = {"fmt"};
  auto Plain = runSource(TradeoffProgram);
  auto WithInline = runSource(TradeoffProgram, Inlined);
  EXPECT_EQ(Plain.first, WithInline.first);
  EXPECT_EQ(Plain.second, WithInline.second);
}

TEST(InlinerTest, InliningSavesCallsAndCoarsensTheProfile) {
  auto ProfileOf = [](CodeGenOptions CG) {
    CG.EnableProfiling = true;
    Image Img = compileTLOrDie(TradeoffProgram, CG);
    Monitor Mon(Img.lowPc(), Img.highPc());
    VMOptions VO;
    VO.CyclesPerTick = 100;
    VM Machine(Img, VO);
    Machine.setHooks(&Mon);
    RunResult R = cantFail(Machine.run());
    auto Report = cantFail(analyzeImageProfile(Img, Mon.finish()));
    return std::make_pair(R.Cycles, std::move(Report));
  };

  CodeGenOptions Plain;
  CodeGenOptions Inlined;
  Inlined.InlineFunctions = {"fmt"};
  auto [PlainCycles, PlainReport] = ProfileOf(Plain);
  auto [InlinedCycles, InlinedReport] = ProfileOf(Inlined);

  // "the overhead of a function call and return can be saved for each
  // datum": the inlined build runs in fewer cycles.
  EXPECT_LT(InlinedCycles, PlainCycles);

  // "the loss of routines will make its output more granular": fmt had
  // 2000 calls and its own time before; afterwards it is invisible and
  // its time is indistinguishable inside output.
  uint32_t FmtBefore = PlainReport.findFunction("fmt");
  ASSERT_NE(FmtBefore, ~0u);
  EXPECT_EQ(PlainReport.Functions[FmtBefore].Calls, 2000u);
  EXPECT_GT(PlainReport.Functions[FmtBefore].SelfTime, 0.0);

  uint32_t FmtAfter = InlinedReport.findFunction("fmt");
  ASSERT_NE(FmtAfter, ~0u); // Still in the image (could be called).
  EXPECT_EQ(InlinedReport.Functions[FmtAfter].Calls, 0u);
  EXPECT_EQ(InlinedReport.Functions[FmtAfter].SelfTime, 0.0);
  uint32_t Output = InlinedReport.findFunction("output");
  EXPECT_GT(InlinedReport.Functions[Output].SelfTime,
            PlainReport.Functions[PlainReport.findFunction("output")]
                .SelfTime);
}
