//===- tests/annotate_test.cpp - Line tables and annotated listings -------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "core/Annotate.h"
#include "runtime/Monitor.h"
#include "vm/CodeGen.h"
#include "vm/VM.h"

#include <gtest/gtest.h>

using namespace gprof;

namespace {

// Line numbers below refer to this exact text (line 1 is the first
// line after the opening quote).
const char *Source =
    R"(fn hot_loop(n) {
  var acc = 0;
  var i = 0;
  while (i < n) {
    acc = acc + i * i;
    i = i + 1;
  }
  return acc;
}
fn helper(x) { return x + 1; }
fn main() {
  var total = hot_loop(20000);
  var i = 0;
  while (i < 300) {
    total = total + helper(i);
    i = i + 1;
  }
  return total;
}
)";

struct Annotated {
  Image Img;
  ProfileData Data;
  std::vector<AnnotatedLine> Lines;
};

Annotated annotateRun() {
  CodeGenOptions CG;
  CG.EnableProfiling = true;
  Annotated A{compileTLOrDie(Source, CG), {}, {}};
  Monitor Mon(A.Img.lowPc(), A.Img.highPc());
  VMOptions VO;
  VO.CyclesPerTick = 37;
  VM Machine(A.Img, VO);
  Machine.setHooks(&Mon);
  cantFail(Machine.run());
  A.Data = Mon.finish();
  A.Lines = annotateSource(A.Img, Source, A.Data);
  return A;
}

} // namespace

TEST(LineTableTest, PresentAndSorted) {
  Image Img = compileTLOrDie(Source);
  ASSERT_FALSE(Img.LineTable.empty());
  for (size_t I = 1; I < Img.LineTable.size(); ++I)
    EXPECT_GE(Img.LineTable[I].CodeOffset,
              Img.LineTable[I - 1].CodeOffset);
}

TEST(LineTableTest, RoundTripsThroughSerialization) {
  Image Img = compileTLOrDie(Source);
  auto Back = Image::deserialize(Img.serialize());
  ASSERT_TRUE(static_cast<bool>(Back));
  ASSERT_EQ(Back->LineTable.size(), Img.LineTable.size());
  for (size_t I = 0; I != Img.LineTable.size(); ++I) {
    EXPECT_EQ(Back->LineTable[I].CodeOffset, Img.LineTable[I].CodeOffset);
    EXPECT_EQ(Back->LineTable[I].Line, Img.LineTable[I].Line);
  }
}

TEST(LineTableTest, LineForPcMapsEntries) {
  // Use a profiled image: the mcount prologue instruction anchors the
  // declaration line (without it the first statement's mark takes over).
  CodeGenOptions CG;
  CG.EnableProfiling = true;
  Image Img = compileTLOrDie(Source, CG);
  // The entry of hot_loop is attributed to its declaration line (1).
  const FuncInfo *Hot = nullptr;
  for (const FuncInfo &F : Img.Functions)
    if (F.Name == "hot_loop")
      Hot = &F;
  ASSERT_NE(Hot, nullptr);
  EXPECT_EQ(Img.lineForPc(Hot->Addr), 1u);
  // Outside the code segment there is no line.
  EXPECT_EQ(Img.lineForPc(0), 0u);
  EXPECT_EQ(Img.lineForPc(Img.highPc()), 0u);
}

TEST(LineTableTest, MalformedTablesRejected) {
  Image Img = compileTLOrDie(Source);
  Img.LineTable = {{5, 1}, {2, 2}}; // Out of order.
  auto R = Image::deserialize(Img.serialize());
  EXPECT_FALSE(static_cast<bool>(R));
  (void)R.takeError();

  Img.LineTable = {{static_cast<uint32_t>(Img.Code.size()), 1}}; // Range.
  auto R2 = Image::deserialize(Img.serialize());
  EXPECT_FALSE(static_cast<bool>(R2));
  (void)R2.takeError();
}

TEST(AnnotateTest, HotLoopLinesCarryTheTime) {
  Annotated A = annotateRun();
  ASSERT_GE(A.Lines.size(), 18u);
  double Total = 0.0, LoopBody = 0.0;
  for (const AnnotatedLine &L : A.Lines) {
    Total += L.SelfTime;
    if (L.Line == 4 || L.Line == 5 || L.Line == 6) // the hot while loop
      LoopBody += L.SelfTime;
  }
  ASSERT_GT(Total, 0.0);
  EXPECT_GT(LoopBody, 0.8 * Total);
}

TEST(AnnotateTest, CallSiteLinesCarryTheCounts) {
  Annotated A = annotateRun();
  // Line 12 calls hot_loop once; line 15 calls helper 300 times.
  EXPECT_EQ(A.Lines[11].Calls, 1u);
  EXPECT_EQ(A.Lines[14].Calls, 300u);
  // Non-call lines have no counts.
  EXPECT_EQ(A.Lines[2].Calls, 0u);
}

TEST(AnnotateTest, ListingFormat) {
  Annotated A = annotateRun();
  std::string Out = printAnnotatedSource(A.Lines);
  EXPECT_NE(Out.find("seconds"), std::string::npos);
  EXPECT_NE(Out.find("while (i < n)"), std::string::npos);
  // Line numbers are present.
  EXPECT_NE(Out.find("  15  "), std::string::npos);
  // The helper call line shows 300.
  std::string Line15;
  size_t Pos = Out.find("total = total + helper(i);");
  ASSERT_NE(Pos, std::string::npos);
  size_t LineStart = Out.rfind('\n', Pos) + 1;
  Line15 = Out.substr(LineStart, Pos - LineStart);
  EXPECT_NE(Line15.find("300"), std::string::npos) << Line15;
}

TEST(AnnotateTest, EmptyProfileAnnotatesToZeros) {
  Image Img = compileTLOrDie(Source);
  ProfileData Empty;
  auto Lines = annotateSource(Img, Source, Empty);
  for (const AnnotatedLine &L : Lines) {
    EXPECT_EQ(L.SelfTime, 0.0);
    EXPECT_EQ(L.Calls, 0u);
  }
}
