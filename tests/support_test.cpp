//===- tests/support_test.cpp - Unit tests for the support library --------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "support/BinaryStream.h"
#include "support/CommandLine.h"
#include "support/Error.h"
#include "support/FileUtils.h"
#include "support/Format.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace gprof;

//===----------------------------------------------------------------------===//
// Error / Expected
//===----------------------------------------------------------------------===//

TEST(ErrorTest, SuccessIsFalse) {
  Error E = Error::success();
  EXPECT_FALSE(static_cast<bool>(E));
}

TEST(ErrorTest, FailureCarriesMessage) {
  Error E = Error::failure("broke");
  EXPECT_TRUE(static_cast<bool>(E));
  EXPECT_EQ(E.message(), "broke");
}

TEST(ErrorTest, MoveTransfersState) {
  Error E = Error::failure("original");
  Error F = std::move(E);
  EXPECT_TRUE(static_cast<bool>(F));
  EXPECT_EQ(F.message(), "original");
}

TEST(ExpectedTest, HoldsValue) {
  Expected<int> E(42);
  ASSERT_TRUE(static_cast<bool>(E));
  EXPECT_EQ(*E, 42);
}

TEST(ExpectedTest, HoldsError) {
  Expected<int> E(Error::failure("nope"));
  ASSERT_FALSE(static_cast<bool>(E));
  EXPECT_EQ(E.message(), "nope");
  Error Err = E.takeError();
  EXPECT_TRUE(static_cast<bool>(Err));
}

TEST(ExpectedTest, TakeValueMoves) {
  Expected<std::string> E(std::string("payload"));
  ASSERT_TRUE(static_cast<bool>(E));
  std::string S = E.takeValue();
  EXPECT_EQ(S, "payload");
}

TEST(ExpectedTest, CantFailUnwraps) {
  EXPECT_EQ(cantFail(Expected<int>(7)), 7);
  cantFail(Error::success());
}

//===----------------------------------------------------------------------===//
// Format
//===----------------------------------------------------------------------===//

TEST(FormatTest, BasicPrintf) {
  EXPECT_EQ(format("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(format("empty"), "empty");
}

TEST(FormatTest, LongOutput) {
  std::string Long(5000, 'a');
  EXPECT_EQ(format("%s", Long.c_str()).size(), 5000u);
}

TEST(FormatTest, Padding) {
  EXPECT_EQ(padLeft("ab", 5), "   ab");
  EXPECT_EQ(padRight("ab", 5), "ab   ");
  EXPECT_EQ(padLeft("abcdef", 3), "abcdef");
}

TEST(FormatTest, FixedAndPercent) {
  EXPECT_EQ(formatFixed(1.2345, 2), "1.23");
  EXPECT_EQ(formatPercent(41.5, 100.0), "41.5");
  EXPECT_EQ(formatPercent(1.0, 0.0), "0.0");
}

TEST(FormatTest, SplitKeepsEmptyFields) {
  auto Parts = splitString("a/b//c", '/');
  ASSERT_EQ(Parts.size(), 4u);
  EXPECT_EQ(Parts[0], "a");
  EXPECT_EQ(Parts[2], "");
  EXPECT_EQ(Parts[3], "c");
}

TEST(FormatTest, Trim) {
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(FormatTest, ParseIntegers) {
  long long S;
  unsigned long long U;
  EXPECT_TRUE(parseInt64("-42", S));
  EXPECT_EQ(S, -42);
  EXPECT_TRUE(parseUInt64(" 99 ", U));
  EXPECT_EQ(U, 99u);
  EXPECT_FALSE(parseInt64("4x", S));
  EXPECT_FALSE(parseUInt64("-1", U));
  EXPECT_FALSE(parseInt64("", S));
  EXPECT_FALSE(parseUInt64("99999999999999999999999", U));
}

//===----------------------------------------------------------------------===//
// BinaryStream
//===----------------------------------------------------------------------===//

TEST(BinaryStreamTest, RoundTripScalars) {
  BinaryWriter W;
  W.writeU8(0xAB);
  W.writeU16(0x1234);
  W.writeU32(0xDEADBEEF);
  W.writeU64(0x0123456789ABCDEFULL);
  W.writeI64(-77);
  W.writeF64(3.25);
  W.writeString("hello");

  BinaryReader R(W.bytes());
  EXPECT_EQ(cantFail(R.readU8()), 0xAB);
  EXPECT_EQ(cantFail(R.readU16()), 0x1234);
  EXPECT_EQ(cantFail(R.readU32()), 0xDEADBEEFu);
  EXPECT_EQ(cantFail(R.readU64()), 0x0123456789ABCDEFULL);
  EXPECT_EQ(cantFail(R.readI64()), -77);
  EXPECT_DOUBLE_EQ(cantFail(R.readF64()), 3.25);
  EXPECT_EQ(cantFail(R.readString()), "hello");
  EXPECT_TRUE(R.atEnd());
}

TEST(BinaryStreamTest, LittleEndianLayout) {
  BinaryWriter W;
  W.writeU32(0x01020304);
  ASSERT_EQ(W.size(), 4u);
  EXPECT_EQ(W.bytes()[0], 0x04);
  EXPECT_EQ(W.bytes()[3], 0x01);
}

TEST(BinaryStreamTest, TruncatedReadsFail) {
  BinaryWriter W;
  W.writeU16(7);
  BinaryReader R(W.bytes());
  auto V = R.readU64();
  EXPECT_FALSE(static_cast<bool>(V));
  (void)V.takeError();
}

TEST(BinaryStreamTest, TruncatedStringFails) {
  BinaryWriter W;
  W.writeU32(100); // Claims 100 bytes; provides none.
  BinaryReader R(W.bytes());
  auto S = R.readString();
  EXPECT_FALSE(static_cast<bool>(S));
  (void)S.takeError();
}

//===----------------------------------------------------------------------===//
// FileUtils
//===----------------------------------------------------------------------===//

TEST(FileUtilsTest, RoundTrip) {
  std::string Path = testing::TempDir() + "/gprof_fileutils_test.bin";
  std::vector<uint8_t> Bytes = {0, 1, 2, 255, 7};
  cantFail(writeFileBytes(Path, Bytes));
  EXPECT_EQ(cantFail(readFileBytes(Path)), Bytes);
  std::remove(Path.c_str());
}

TEST(FileUtilsTest, MissingFileFails) {
  auto R = readFileBytes("/nonexistent/definitely/not/here");
  EXPECT_FALSE(static_cast<bool>(R));
  (void)R.takeError();
}

//===----------------------------------------------------------------------===//
// Random
//===----------------------------------------------------------------------===//

TEST(RandomTest, Deterministic) {
  SplitMix64 A(123), B(123);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RandomTest, BoundsRespected) {
  SplitMix64 Rng(7);
  for (int I = 0; I != 1000; ++I) {
    EXPECT_LT(Rng.nextBelow(10), 10u);
    uint64_t V = Rng.nextInRange(5, 9);
    EXPECT_GE(V, 5u);
    EXPECT_LE(V, 9u);
    double D = Rng.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(RandomTest, RoughUniformity) {
  SplitMix64 Rng(99);
  int Counts[4] = {0, 0, 0, 0};
  for (int I = 0; I != 40000; ++I)
    ++Counts[Rng.nextBelow(4)];
  for (int C : Counts) {
    EXPECT_GT(C, 9000);
    EXPECT_LT(C, 11000);
  }
}

//===----------------------------------------------------------------------===//
// CommandLine
//===----------------------------------------------------------------------===//

namespace {

Error parseArgs(OptionParser &P, std::vector<const char *> Args) {
  Args.insert(Args.begin(), "tool");
  return P.parse(static_cast<int>(Args.size()), Args.data());
}

} // namespace

TEST(CommandLineTest, FlagsAndValues) {
  OptionParser P("t", "test");
  P.addFlag("brief", 'b', "brief");
  P.addOption("out", 'o', "FILE", "output");
  cantFail(parseArgs(P, {"-b", "--out", "x.txt", "pos1", "pos2"}));
  EXPECT_TRUE(P.hasFlag("brief"));
  EXPECT_EQ(P.getValue("out").value(), "x.txt");
  ASSERT_EQ(P.positional().size(), 2u);
  EXPECT_EQ(P.positional()[0], "pos1");
}

TEST(CommandLineTest, EqualsAndAttachedForms) {
  OptionParser P("t", "test");
  P.addOption("out", 'o', "FILE", "output");
  cantFail(parseArgs(P, {"--out=a", "-ob"}));
  auto Vals = P.getValues("out");
  ASSERT_EQ(Vals.size(), 2u);
  EXPECT_EQ(Vals[0], "a");
  EXPECT_EQ(Vals[1], "b");
  EXPECT_EQ(P.getValue("out").value(), "b");
}

TEST(CommandLineTest, RepeatableValues) {
  OptionParser P("t", "test");
  P.addOption("k", 'k', "ARC", "arc");
  cantFail(parseArgs(P, {"-k", "a/b", "-k", "c/d"}));
  EXPECT_EQ(P.getValues("k").size(), 2u);
}

TEST(CommandLineTest, UnknownOptionFails) {
  OptionParser P("t", "test");
  Error E = parseArgs(P, {"--bogus"});
  EXPECT_TRUE(static_cast<bool>(E));
}

TEST(CommandLineTest, MissingValueFails) {
  OptionParser P("t", "test");
  P.addOption("out", 'o', "FILE", "output");
  Error E = parseArgs(P, {"--out"});
  EXPECT_TRUE(static_cast<bool>(E));
}

TEST(CommandLineTest, DoubleDashEndsOptions) {
  OptionParser P("t", "test");
  P.addFlag("brief", 'b', "brief");
  cantFail(parseArgs(P, {"--", "-b"}));
  EXPECT_FALSE(P.hasFlag("brief"));
  ASSERT_EQ(P.positional().size(), 1u);
  EXPECT_EQ(P.positional()[0], "-b");
}

TEST(CommandLineTest, HelpTextMentionsOptions) {
  OptionParser P("mytool", "does things");
  P.addOption("out", 'o', "FILE", "write output to FILE");
  std::string Help = P.helpText();
  EXPECT_NE(Help.find("mytool"), std::string::npos);
  EXPECT_NE(Help.find("--out"), std::string::npos);
  EXPECT_NE(Help.find("write output to FILE"), std::string::npos);
}
