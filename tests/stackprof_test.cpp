//===- tests/stackprof_test.cpp - Tests for the stack-sampling profiler ---===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "stackprof/StackProfiler.h"

#include "core/SymbolTable.h"
#include "vm/CodeGen.h"
#include "vm/VM.h"

#include <gtest/gtest.h>

using namespace gprof;

namespace {

/// Runs \p Source under the stack profiler.
StackProfile profileStacks(std::string_view Source,
                           uint64_t CyclesPerTick = 50,
                           uint64_t TicksPerSecond = 60) {
  CodeGenOptions CG;
  CG.EnableProfiling = true;
  Image Img = compileTLOrDie(Source, CG);
  StackSampleProfiler Prof(TicksPerSecond);
  VMOptions VO;
  VO.CyclesPerTick = CyclesPerTick;
  VM Machine(Img, VO);
  Machine.setHooks(&Prof);
  cantFail(Machine.run());
  return Prof.buildProfile(SymbolTable::fromImage(Img));
}

} // namespace

TEST(StackProfilerTest, SelfAndInclusiveTimes) {
  StackProfile P = profileStacks(R"(
    fn leaf(n) {
      var i = 0;
      var a = 0;
      while (i < n) { a = a + i * i; i = i + 1; }
      return a;
    }
    fn mid(n) { return leaf(n) + leaf(n); }
    fn main() { return mid(3000); }
  )");
  const auto *Leaf = P.find("leaf");
  const auto *Mid = P.find("mid");
  const auto *Main = P.find("main");
  ASSERT_NE(Leaf, nullptr);
  ASSERT_NE(Mid, nullptr);
  ASSERT_NE(Main, nullptr);

  // Nearly all time is inside leaf; main and mid inherit it inclusively.
  EXPECT_GT(Leaf->SelfTime, 0.9 * P.TotalTime);
  EXPECT_GT(Mid->InclusiveTime, 0.9 * P.TotalTime);
  EXPECT_GT(Main->InclusiveTime, 0.99 * P.TotalTime);
  EXPECT_LT(Mid->SelfTime, 0.1 * P.TotalTime);
  // Self <= inclusive, always.
  for (const auto &F : P.Functions)
    EXPECT_LE(F.SelfTime, F.InclusiveTime + 1e-12);
}

TEST(StackProfilerTest, RecursionCountedOnce) {
  StackProfile P = profileStacks(R"(
    fn down(n) {
      if (n == 0) { return 0; }
      var i = 0;
      var a = 0;
      while (i < 50) { a = a + i; i = i + 1; }
      return a + down(n - 1);
    }
    fn main() { return down(200); }
  )");
  const auto *Down = P.find("down");
  ASSERT_NE(Down, nullptr);
  // Despite up to 200 simultaneous frames of down, its inclusive time is
  // counted once per tick and can never exceed the total.
  EXPECT_LE(Down->InclusiveTime, P.TotalTime + 1e-12);
  EXPECT_GT(Down->InclusiveTime, 0.9 * P.TotalTime);
}

TEST(StackProfilerTest, ArcTimesAttributeExactly) {
  StackProfile P = profileStacks(R"(
    fn spin(n) {
      var i = 0;
      var a = 0;
      while (i < n) { a = a + i; i = i + 1; }
      return a;
    }
    fn light() { return spin(40); }
    fn heavy() { return spin(4000); }
    fn main() {
      var i = 0;
      var a = 0;
      while (i < 10) { a = a + light(); i = i + 1; }
      return a + heavy();
    }
  )");
  double LightArc = P.arcTime("light", "spin");
  double HeavyArc = P.arcTime("heavy", "spin");
  // heavy's single call dwarfs light's ten calls.
  EXPECT_GT(HeavyArc, 5 * LightArc);
  // Unknown arcs report zero.
  EXPECT_EQ(P.arcTime("main", "spin"), 0.0);
  EXPECT_EQ(P.arcTime("nope", "spin"), 0.0);
}

TEST(StackProfilerTest, ResetClears) {
  CodeGenOptions CG;
  CG.EnableProfiling = true;
  Image Img = compileTLOrDie(
      "fn main() { var i = 0; while (i < 5000) { i = i + 1; } return i; }",
      CG);
  StackSampleProfiler Prof;
  VMOptions VO;
  VO.CyclesPerTick = 50;
  VM Machine(Img, VO);
  Machine.setHooks(&Prof);
  cantFail(Machine.run());
  EXPECT_GT(Prof.sampleCount(), 0u);
  Prof.reset();
  EXPECT_EQ(Prof.sampleCount(), 0u);
  StackProfile P = Prof.buildProfile(SymbolTable::fromImage(Img));
  EXPECT_TRUE(P.Functions.empty());
}

TEST(StackProfilerTest, SamplingCostScalesWithFrequency) {
  // Sanity on the retrospective's note that stack gathering cost is
  // "hidden by backing off the frequency": sample counts scale inversely
  // with the interval, deterministically.
  const char *Source =
      "fn main() { var i = 0; while (i < 20000) { i = i + 1; } return i; }";
  CodeGenOptions CG;
  CG.EnableProfiling = true;
  Image Img = compileTLOrDie(Source, CG);

  uint64_t Counts[2] = {0, 0};
  uint64_t Intervals[2] = {50, 500};
  for (int I = 0; I != 2; ++I) {
    StackSampleProfiler Prof;
    VMOptions VO;
    VO.CyclesPerTick = Intervals[I];
    VM Machine(Img, VO);
    Machine.setHooks(&Prof);
    cantFail(Machine.run());
    Counts[I] = Prof.sampleCount();
  }
  EXPECT_NEAR(static_cast<double>(Counts[0]) / Counts[1], 10.0, 0.5);
}

TEST(StackProfilerTest, TotalTimeMatchesTickArithmetic) {
  StackProfile P = profileStacks(
      "fn main() { var i = 0; while (i < 6000) { i = i + 1; } return i; }",
      /*CyclesPerTick=*/100, /*TicksPerSecond=*/100);
  // TotalTime = samples / 100; self times sum to it.
  double SelfSum = 0;
  for (const auto &F : P.Functions)
    SelfSum += F.SelfTime;
  EXPECT_NEAR(SelfSum, P.TotalTime, 1e-9);
}
