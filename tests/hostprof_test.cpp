//===- tests/hostprof_test.cpp - Tests for the native profiling runtime ---===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// This test binary is NOT compiled with -finstrument-functions; it
/// exercises the hostprof runtime by invoking the instrumentation hooks
/// directly (the compiler would emit exactly these calls) and by running
/// the control interface end to end, including SIGPROF sampling.
///
//===----------------------------------------------------------------------===//

#include "hostprof/HostProfiler.h"

#include "gmon/GmonFile.h"

#include <gtest/gtest.h>

extern "C" {
void __cyg_profile_func_enter(void *Fn, void *CallSite);
void __cyg_profile_func_exit(void *Fn, void *CallSite);
}

using namespace gprof;

namespace {

/// Spins real CPU so ITIMER_PROF has something to sample.
uint64_t burnCpu(uint64_t Iterations) {
  volatile uint64_t X = 0x12345;
  for (uint64_t I = 0; I != Iterations; ++I) {
    X = X ^ (X >> 13);
    X = X * 0x9e3779b97f4a7c15ULL;
  }
  return X;
}

} // namespace

TEST(HostProfilerTest, HooksAreNoOpsWhileStopped) {
  ASSERT_FALSE(host::isRunning());
  __cyg_profile_func_enter(reinterpret_cast<void *>(0x1234),
                           reinterpret_cast<void *>(0x5678));
  ProfileData D = host::extract();
  EXPECT_TRUE(D.Arcs.empty());
}

TEST(HostProfilerTest, StartCollectStopDump) {
  host::HostProfilerOptions Opts;
  Opts.SampleMicros = 500;
  Error E = host::start(Opts);
  if (E) {
    // Environments without a parseable /proc/self/maps: fall back.
    (void)E.message();
    host::HostProfilerOptions ArcsOnly;
    ArcsOnly.SampleHistogram = false;
    cantFail(host::start(ArcsOnly));
  }
  ASSERT_TRUE(host::isRunning());

  // Simulate what instrumented prologues would do, with two distinct
  // call sites into the same callee plus one multi-callee site.
  auto Fn1 = reinterpret_cast<void *>(&burnCpu);
  auto Fn2 = reinterpret_cast<void *>(&__cyg_profile_func_exit);
  auto Site1 = reinterpret_cast<void *>(0x111111);
  auto Site2 = reinterpret_cast<void *>(0x222222);
  for (int I = 0; I != 5; ++I)
    __cyg_profile_func_enter(Fn1, Site1);
  for (int I = 0; I != 3; ++I)
    __cyg_profile_func_enter(Fn1, Site2);
  __cyg_profile_func_enter(Fn2, Site1);
  burnCpu(20'000'000); // Give the PROF timer a chance to fire.

  host::stop();
  EXPECT_FALSE(host::isRunning());

  ProfileData D = host::extract();
  ASSERT_EQ(D.Arcs.size(), 3u);
  uint64_t IntoFn1 = D.callsInto(reinterpret_cast<Address>(Fn1));
  EXPECT_EQ(IntoFn1, 8u);
  EXPECT_EQ(D.callsInto(reinterpret_cast<Address>(Fn2)), 1u);

  // The data round-trips through the shared gmon container.
  auto Back = readGmon(writeGmon(D));
  ASSERT_TRUE(static_cast<bool>(Back));
  EXPECT_EQ(Back->Arcs.size(), 3u);

  // Stopping again and resetting is harmless.
  host::stop();
  host::reset();
  EXPECT_TRUE(host::extract().Arcs.empty());
}

TEST(HostProfilerTest, SymbolizeProducesValidTable) {
  // Build data whose callees are real function addresses in this process.
  ProfileData D;
  D.addArc(0x1000, reinterpret_cast<Address>(&burnCpu), 4);
  D.addArc(0x2000, reinterpret_cast<Address>(&std::exit), 2);
  SymbolTable Syms = host::symbolize(D);
  EXPECT_GE(Syms.size(), 2u);
  // Every arc destination resolves to some symbol in the table.
  for (const ArcRecord &R : D.Arcs)
    EXPECT_NE(Syms.findContaining(R.SelfPc), NoSymbol);
  // Table is finalized and ordered: lookups behave.
  EXPECT_LE(Syms.lowPc(), Syms.highPc());
}

TEST(HostProfilerTest, SymbolizeUnknownAddressesFallBackToHex) {
  ProfileData D;
  D.addArc(0, 0x10, 1); // Address 0x10 is certainly unmapped.
  SymbolTable Syms = host::symbolize(D);
  uint32_t I = Syms.findContaining(0x10);
  ASSERT_NE(I, NoSymbol);
  EXPECT_EQ(Syms.symbol(I).Name.rfind("0x", 0), 0u);
}
