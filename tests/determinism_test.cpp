//===- tests/determinism_test.cpp - Thread-count invariance of listings ---===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The analyzer's determinism contract: flat and call-graph listings are
/// byte-identical for every AnalyzerOptions::Threads value (docs/
/// ANALYZER.md).  Checked over the golden corpus programs and over a
/// large synthetic profile built to stress every parallel stage — deep
/// cycles for the level-synchronous propagation, histogram buckets that
/// straddle routine boundaries for the routine-major sample assignment,
/// and spontaneous callers plus address gaps for the symbolization
/// shards and the residual reduction.
///
//===----------------------------------------------------------------------===//

#include "core/Analyzer.h"
#include "core/FlatPrinter.h"
#include "core/GraphPrinter.h"
#include "gmon/GmonFile.h"
#include "runtime/Monitor.h"
#include "support/FileUtils.h"
#include "support/Random.h"
#include "vm/CodeGen.h"
#include "vm/VM.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

using namespace gprof;

namespace {

/// The thread counts every scenario is checked at; 1 is the sequential
/// reference, 0 means one worker per hardware thread.
const unsigned ThreadCounts[] = {1, 2, 4, 8, 0};

std::string renderListings(const ProfileReport &R) {
  return printFlatProfile(R) + "\n" + printCallGraph(R);
}

/// Analyzes the same inputs at every thread count and expects identical
/// listings.
void expectThreadInvariant(const SymbolTable &Syms, const ProfileData &Data,
                           AnalyzerOptions BaseOpts,
                           const std::vector<StaticArc> &StaticArcs = {}) {
  std::string Reference;
  for (unsigned Threads : ThreadCounts) {
    AnalyzerOptions Opts = BaseOpts;
    Opts.Threads = Threads;
    Analyzer An(Syms, Opts);
    An.setStaticArcs(StaticArcs);
    std::string Listings = renderListings(cantFail(An.analyze(Data)));
    if (Threads == 1)
      Reference = std::move(Listings);
    else
      EXPECT_EQ(Listings, Reference)
          << "listing diverged at Threads = " << Threads;
  }
  ASSERT_FALSE(Reference.empty());
}

/// A synthetic profile large enough that every parallel stage actually
/// chunks: irregular routine sizes (so fixed-size histogram buckets
/// straddle routine boundaries and address gaps leave unattributed
/// samples), rings of mutual recursion up to 40 deep, self calls, and
/// spontaneous activations from outside the text range.
struct BigProfile {
  SymbolTable Syms;
  ProfileData Data;
  std::vector<StaticArc> StaticArcs;
};

BigProfile makeBigProfile(uint32_t NumFns, uint64_t Seed) {
  BigProfile P;
  SplitMix64 Rng(Seed);
  std::vector<Address> Entry(NumFns);
  std::vector<uint64_t> Size(NumFns);
  Address Addr = 0x1000;
  for (uint32_t I = 0; I != NumFns; ++I) {
    Entry[I] = Addr;
    Size[I] = 24 + Rng.nextBelow(120); // Rarely a bucket multiple.
    P.Syms.addSymbol("fn" + std::to_string(I), Addr, Size[I]);
    Addr += Size[I];
    if (Rng.nextBelow(8) == 0)
      Addr += 16 + Rng.nextBelow(48); // Gap: samples here attach to no one.
  }
  cantFail(P.Syms.finalize());
  const Address HighPc = Addr;

  auto Site = [&](uint32_t Fn, uint64_t K) { return Entry[Fn] + 5 + K; };

  P.Data.TicksPerSecond = 100;
  // Forward calls (the acyclic bulk of the graph).
  for (uint32_t I = 0; I + 1 < NumFns; ++I)
    for (uint64_t J = 0; J != 3; ++J) {
      uint32_t To = I + 1 + static_cast<uint32_t>(Rng.nextBelow(
                                std::min<uint64_t>(NumFns - I - 1, 97)));
      P.Data.Arcs.push_back({Site(I, J), Entry[To], 1 + Rng.nextBelow(50)});
    }
  // Deep cycles: a ring of 2..40 routines every 60 ids.
  for (uint32_t Lo = 0; Lo + 41 < NumFns; Lo += 60) {
    uint32_t Len = 2 + static_cast<uint32_t>(Rng.nextBelow(39));
    for (uint32_t I = 0; I != Len; ++I)
      P.Data.Arcs.push_back({Site(Lo + I, 3),
                             Entry[Lo + (I + 1) % Len],
                             1 + Rng.nextBelow(9)});
  }
  // Self calls and spontaneous activations (call sites outside the text).
  for (uint32_t I = 0; I < NumFns; I += 17)
    P.Data.Arcs.push_back({Site(I, 4), Entry[I], 1 + Rng.nextBelow(5)});
  for (uint32_t I = 0; I < NumFns; I += 23)
    P.Data.Arcs.push_back({I % 2 ? Address(0) : HighPc + I,
                           Entry[I], 1 + Rng.nextBelow(3)});
  // Static-only arcs, some to otherwise-unused routines.
  for (uint32_t I = 0; I + 7 < NumFns; I += 13)
    P.StaticArcs.push_back({Site(I, 6), Entry[I + 7]});

  // Samples: mostly inside routines, some in the gaps, bucket size 64 so
  // most routines straddle a bucket boundary.
  Histogram H(0x1000, HighPc, 64);
  for (uint32_t I = 0; I != NumFns * 12; ++I)
    H.recordPc(0x1000 + Rng.nextBelow(HighPc - 0x1000));
  P.Data.Hist = std::move(H);
  return P;
}

/// Compiles and profiles one corpus program under the golden_test
/// settings, so the reference listing here is the one the golden suite
/// pins against the pre-parallel analyzer.
void runCorpusProgram(const std::string &Name, SymbolTable &Syms,
                      ProfileData &Data) {
  std::string Path = std::string(TL_CORPUS_DIR) + "/" + Name;
  std::string Source = cantFail(readFileText(Path));
  CodeGenOptions CG;
  CG.EnableProfiling = true;
  Image Img = compileTLOrDie(Source, CG);
  Monitor Mon(Img.lowPc(), Img.highPc());
  VMOptions VO;
  VO.CyclesPerTick = 997;
  VM Machine(Img, VO);
  Machine.setHooks(&Mon);
  cantFail(Machine.run());
  Data = cantFail(readGmon(writeGmon(Mon.finish())));
  Syms = SymbolTable::fromImage(Img);
}

TEST(DeterminismTest, GoldenCorpusPrimes) {
  SymbolTable Syms;
  ProfileData Data;
  runCorpusProgram("primes.tl", Syms, Data);
  expectThreadInvariant(Syms, Data, AnalyzerOptions());
}

TEST(DeterminismTest, GoldenCorpusCalculatorWithCycle) {
  SymbolTable Syms;
  ProfileData Data;
  runCorpusProgram("calculator.tl", Syms, Data);
  expectThreadInvariant(Syms, Data, AnalyzerOptions());
}

TEST(DeterminismTest, LargeSyntheticProfile) {
  BigProfile P = makeBigProfile(3000, /*Seed=*/0xfeed);
  expectThreadInvariant(P.Syms, P.Data, AnalyzerOptions());
}

TEST(DeterminismTest, LargeSyntheticWithStaticArcsAndCycleBreaking) {
  BigProfile P = makeBigProfile(1500, /*Seed=*/0xbeef);
  AnalyzerOptions Opts;
  Opts.UseStaticArcs = true;
  Opts.AutoBreakCycleBound = 3;
  Opts.ExcludeTimeOf = {"fn10"};
  expectThreadInvariant(P.Syms, P.Data, Opts, P.StaticArcs);
}

TEST(DeterminismTest, ReportInternalsMatchAcrossThreadCounts) {
  // Beyond the listings: propagated times, cycle aggregates and listing
  // indices must agree exactly between the sequential and pooled runs.
  BigProfile P = makeBigProfile(800, /*Seed=*/0xabcd);
  AnalyzerOptions Seq;
  ProfileReport A = cantFail(Analyzer(P.Syms, Seq).analyze(P.Data));
  AnalyzerOptions Par;
  Par.Threads = 8;
  ProfileReport B = cantFail(Analyzer(P.Syms, Par).analyze(P.Data));

  ASSERT_EQ(A.Functions.size(), B.Functions.size());
  for (size_t I = 0; I != A.Functions.size(); ++I) {
    EXPECT_EQ(A.Functions[I].SelfTime, B.Functions[I].SelfTime) << I;
    EXPECT_EQ(A.Functions[I].ChildTime, B.Functions[I].ChildTime) << I;
    EXPECT_EQ(A.Functions[I].Calls, B.Functions[I].Calls) << I;
    EXPECT_EQ(A.Functions[I].ListingIndex, B.Functions[I].ListingIndex) << I;
  }
  ASSERT_EQ(A.Cycles.size(), B.Cycles.size());
  for (size_t I = 0; I != A.Cycles.size(); ++I) {
    EXPECT_EQ(A.Cycles[I].SelfTime, B.Cycles[I].SelfTime) << I;
    EXPECT_EQ(A.Cycles[I].ChildTime, B.Cycles[I].ChildTime) << I;
    EXPECT_EQ(A.Cycles[I].Members, B.Cycles[I].Members) << I;
  }
  ASSERT_EQ(A.Arcs.size(), B.Arcs.size());
  for (size_t I = 0; I != A.Arcs.size(); ++I) {
    EXPECT_EQ(A.Arcs[I].PropSelf, B.Arcs[I].PropSelf) << I;
    EXPECT_EQ(A.Arcs[I].PropChild, B.Arcs[I].PropChild) << I;
  }
  EXPECT_EQ(A.TotalTime, B.TotalTime);
  EXPECT_EQ(A.UnattributedTime, B.UnattributedTime);
}

} // namespace
