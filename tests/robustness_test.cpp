//===- tests/robustness_test.cpp - Hostile-input and hardening tests ------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deserializers must reject — never crash on — damaged inputs: truncated
/// files, bit flips, and random garbage.  The VM must trap — never crash
/// on — malformed code reached through hand-assembled images.
///
//===----------------------------------------------------------------------===//

#include "gmon/GmonFile.h"
#include "support/Random.h"
#include "vm/Bytecode.h"
#include "vm/CodeGen.h"
#include "vm/Image.h"
#include "vm/VM.h"

#include <gtest/gtest.h>

using namespace gprof;

namespace {

std::vector<uint8_t> sampleGmonBytes() {
  ProfileData D;
  D.TicksPerSecond = 60;
  D.Hist = Histogram(0x1000, 0x1400, 4);
  D.Hist.recordPc(0x1000);
  D.Hist.recordPc(0x1234);
  for (int I = 0; I != 20; ++I)
    D.addArc(0x1000 + I * 3, 0x1100 + (I % 4) * 16, I + 1);
  return writeGmon(D);
}

std::vector<uint8_t> sampleImageBytes() {
  return compileTLOrDie(R"(
    fn helper(a, b) { return a * b + 1; }
    fn main() {
      var i = 0;
      var acc = 0;
      while (i < 3) { acc = acc + helper(i, i); i = i + 1; }
      return acc;
    }
  )")
      .serialize();
}

} // namespace

//===----------------------------------------------------------------------===//
// Deserializer fuzzing (deterministic seeds)
//===----------------------------------------------------------------------===//

class GmonFuzzTest : public testing::TestWithParam<uint64_t> {};

TEST_P(GmonFuzzTest, TruncationsNeverCrash) {
  std::vector<uint8_t> Bytes = sampleGmonBytes();
  SplitMix64 Rng(GetParam());
  for (int Trial = 0; Trial != 50; ++Trial) {
    size_t Cut = static_cast<size_t>(Rng.nextBelow(Bytes.size()));
    std::vector<uint8_t> Short(Bytes.begin(), Bytes.begin() + Cut);
    auto R = readGmon(Short);
    EXPECT_FALSE(static_cast<bool>(R)) << "cut at " << Cut;
    (void)R.takeError();
  }
}

TEST_P(GmonFuzzTest, BitFlipsEitherParseOrFailCleanly) {
  std::vector<uint8_t> Bytes = sampleGmonBytes();
  SplitMix64 Rng(GetParam() + 100);
  for (int Trial = 0; Trial != 200; ++Trial) {
    std::vector<uint8_t> Mutated = Bytes;
    // Flip 1-4 random bits.
    unsigned Flips = 1 + static_cast<unsigned>(Rng.nextBelow(4));
    for (unsigned F = 0; F != Flips; ++F) {
      size_t Byte = static_cast<size_t>(Rng.nextBelow(Mutated.size()));
      Mutated[Byte] ^= static_cast<uint8_t>(1u << Rng.nextBelow(8));
    }
    auto R = readGmon(Mutated);
    if (R) {
      // A parse that survives must produce internally consistent data.
      EXPECT_LE(R->Hist.numBuckets(), 1u << 27);
    } else {
      (void)R.takeError();
    }
  }
}

TEST_P(GmonFuzzTest, RandomGarbageRejected) {
  SplitMix64 Rng(GetParam() + 500);
  for (int Trial = 0; Trial != 100; ++Trial) {
    std::vector<uint8_t> Garbage(Rng.nextBelow(256));
    for (uint8_t &B : Garbage)
      B = static_cast<uint8_t>(Rng.next());
    auto R = readGmon(Garbage);
    // 4-byte magic + version make an accidental parse implausible.
    EXPECT_FALSE(static_cast<bool>(R));
    (void)R.takeError();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GmonFuzzTest,
                         testing::Range<uint64_t>(0, 4));

class ImageFuzzTest : public testing::TestWithParam<uint64_t> {};

TEST_P(ImageFuzzTest, TruncationsNeverCrash) {
  std::vector<uint8_t> Bytes = sampleImageBytes();
  SplitMix64 Rng(GetParam());
  for (int Trial = 0; Trial != 50; ++Trial) {
    size_t Cut = static_cast<size_t>(Rng.nextBelow(Bytes.size()));
    std::vector<uint8_t> Short(Bytes.begin(), Bytes.begin() + Cut);
    auto R = Image::deserialize(Short);
    EXPECT_FALSE(static_cast<bool>(R));
    (void)R.takeError();
  }
}

TEST_P(ImageFuzzTest, MutatedImagesLoadOrFailCleanly_AndRunOrTrap) {
  std::vector<uint8_t> Bytes = sampleImageBytes();
  SplitMix64 Rng(GetParam() + 77);
  for (int Trial = 0; Trial != 100; ++Trial) {
    std::vector<uint8_t> Mutated = Bytes;
    unsigned Flips = 1 + static_cast<unsigned>(Rng.nextBelow(6));
    for (unsigned F = 0; F != Flips; ++F) {
      size_t Byte = static_cast<size_t>(Rng.nextBelow(Mutated.size()));
      Mutated[Byte] ^= static_cast<uint8_t>(1u << Rng.nextBelow(8));
    }
    auto Img = Image::deserialize(Mutated);
    if (!Img) {
      (void)Img.takeError();
      continue;
    }
    // A structurally valid mutant must either run to completion or trap
    // with a clean error — never crash.  Bound the run tightly.
    VMOptions VO;
    VO.MaxCycles = 100000;
    VO.MaxCallDepth = 64;
    VM Machine(*Img, VO);
    auto R = Machine.run();
    if (!R)
      (void)R.takeError();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ImageFuzzTest,
                         testing::Range<uint64_t>(0, 4));

//===----------------------------------------------------------------------===//
// Hand-assembled images: VM hardening paths
//===----------------------------------------------------------------------===//

namespace {

/// Builds a single-function image from raw code bytes.
Image handImage(std::vector<uint8_t> Code, uint16_t NumSlots = 0) {
  Image Img;
  Img.Code = std::move(Code);
  FuncInfo F;
  F.Name = "main";
  F.Addr = Image::BaseAddr;
  F.CodeSize = static_cast<uint32_t>(Img.Code.size());
  F.NumParams = 0;
  F.NumSlots = NumSlots;
  Img.Functions.push_back(F);
  Img.EntryFunction = 0;
  return Img;
}

void expectTrap(const Image &Img, const std::string &Needle) {
  VMOptions VO;
  VO.MaxCycles = 10000;
  VM Machine(Img, VO);
  auto R = Machine.run();
  ASSERT_FALSE(static_cast<bool>(R));
  EXPECT_NE(R.message().find(Needle), std::string::npos) << R.message();
  (void)R.takeError();
}

constexpr uint8_t op(Opcode O) { return static_cast<uint8_t>(O); }

} // namespace

TEST(VMHardeningTest, IllegalOpcodeTraps) {
  expectTrap(handImage({0xEE}), "illegal opcode");
}

TEST(VMHardeningTest, HaltSentinelTraps) {
  expectTrap(handImage({op(Opcode::Halt)}), "halt sentinel");
}

TEST(VMHardeningTest, RunningOffCodeEndTraps) {
  // A lone push falls off the end of the segment.
  std::vector<uint8_t> Code = {op(Opcode::Push), 1, 0, 0, 0, 0, 0, 0, 0};
  expectTrap(handImage(Code), "left the code segment");
}

TEST(VMHardeningTest, TruncatedInstructionTraps) {
  // Push opcode with only 3 of its 8 operand bytes.
  expectTrap(handImage({op(Opcode::Push), 1, 2, 3}), "truncated");
}

TEST(VMHardeningTest, JumpOutsideSegmentTraps) {
  std::vector<uint8_t> Code = {op(Opcode::Jump), 0, 0, 0, 0,
                               0, 0, 0, 0}; // Target 0 < BaseAddr.
  expectTrap(handImage(Code), "left the code segment");
}

TEST(VMHardeningTest, CallToNonEntryAddressTraps) {
  // Call target = BaseAddr + 1, which is not a function entry.
  std::vector<uint8_t> Code = {op(Opcode::Call), 1, 0x10, 0, 0,
                               0, 0, 0, 0, /*argc=*/0};
  expectTrap(handImage(Code), "invalid function value");
}

TEST(VMHardeningTest, WellFormedHandImageRuns) {
  // push 7; ret  — a minimal valid program.
  std::vector<uint8_t> Code = {op(Opcode::Push), 7, 0, 0, 0, 0, 0, 0, 0,
                               op(Opcode::Ret)};
  Image Img = handImage(Code);
  VM Machine(Img);
  auto R = Machine.run();
  ASSERT_TRUE(static_cast<bool>(R)) << R.message();
  EXPECT_EQ(R->ExitValue, 7);
}
