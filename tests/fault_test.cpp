//===- tests/fault_test.cpp - Crash-safe profile I/O ----------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Crash-safety tests (docs/ROBUSTNESS.md): the fault-injection registry
/// itself, atomic write-then-rename under injected faults, the tolerant
/// gmon reader over a deterministic truncation/mutation corpus, and a
/// fault sweep over every store I/O path asserting that a failed operation
/// never leaves a torn artifact behind.
///
//===----------------------------------------------------------------------===//

#include "gmon/GmonFile.h"
#include "runtime/Monitor.h"
#include "store/ProfileStore.h"
#include "support/FaultInjection.h"
#include "support/FileUtils.h"
#include "support/Format.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <thread>
#include <unistd.h>

using namespace gprof;

namespace {

/// Every fixture disarms on teardown so a failing test cannot poison the
/// process-wide registry for its successors.
class FaultFixture : public ::testing::Test {
protected:
  void SetUp() override { fault::disarmAll(); }
  void TearDown() override { fault::disarmAll(); }
};

class FaultInjectionTest : public FaultFixture {};
class AtomicWriteTest : public FaultFixture {};
class FaultCorpusTest : public FaultFixture {};
class StoreFaultTest : public FaultFixture {};

/// A fresh directory under the test temp dir, removed on destruction.
/// The pid keeps concurrent ctest entries that re-run the same case
/// (the named smoke targets) from sweeping each other's trees.
struct TempDir {
  explicit TempDir(const std::string &Name)
      : Path(testing::TempDir() + "/gprof_fault_" +
             std::to_string(::getpid()) + "_" + Name) {
    std::filesystem::remove_all(Path);
    std::filesystem::create_directories(Path);
  }
  ~TempDir() { std::filesystem::remove_all(Path); }
  std::string Path;
};

/// Reference profile with a fully known serialization:  8 histogram
/// buckets with counts 1..8 and 5 arcs with distinct fields, so every
/// truncation point has a computable salvage prefix.
ProfileData makeRefData() {
  ProfileData D;
  D.TicksPerSecond = 100;
  D.RunCount = 3;
  D.Hist = Histogram(0, 64, 8);
  for (uint64_t B = 0; B != 8; ++B)
    for (uint64_t K = 0; K != B + 1; ++K)
      D.Hist.recordPc(B * 8);
  D.addArc(0x10, 0x100, 1);
  D.addArc(0x20, 0x100, 2);
  D.addArc(0x30, 0x200, 3);
  D.addArc(0x40, 0x200, 4);
  D.addArc(0x50, 0x300, 5);
  return D;
}

// Serialized layout of makeRefData() (docs/FORMATS.md): the fixed header
// runs through the histogram geometry, then counts, then narcs, then
// 24-byte arc records.
constexpr size_t HeaderSize = 53;
constexpr size_t NumBuckets = 8;
constexpr size_t NumArcs = 5;
constexpr size_t CountsEnd = HeaderSize + 8 * NumBuckets;
constexpr size_t ArcsStart = CountsEnd + 8;
constexpr size_t TotalSize = ArcsStart + 24 * NumArcs;

/// Snapshot of every regular file under \p Root, path -> bytes.
std::map<std::string, std::vector<uint8_t>>
snapshotTree(const std::string &Root) {
  std::map<std::string, std::vector<uint8_t>> Snap;
  for (const auto &Entry :
       std::filesystem::recursive_directory_iterator(Root))
    if (Entry.is_regular_file())
      Snap[Entry.path().string()] =
          cantFail(readFileBytes(Entry.path().string()));
  return Snap;
}

/// True if any file under \p Root has a ".tmp" suffix.
bool anyTmpFile(const std::string &Root) {
  for (const auto &Entry :
       std::filesystem::recursive_directory_iterator(Root))
    if (Entry.path().extension() == ".tmp")
      return true;
  return false;
}

ProfileData makeStoreShard(uint64_t Seed) {
  ProfileData D;
  D.TicksPerSecond = 60;
  D.Hist = Histogram(0x1000, 0x1100, 8);
  D.Hist.recordPc(0x1000 + (Seed % 32) * 8);
  D.addArc(0x1000 + Seed * 8, 0x1040, 1 + Seed);
  return D;
}

} // namespace

//===----------------------------------------------------------------------===//
// Fault-injection registry
//===----------------------------------------------------------------------===//

TEST_F(FaultInjectionTest, FiresExactlyTheNthCall) {
  fault::arm("test.point", 3);
  EXPECT_FALSE(static_cast<bool>(fault::check("test.point", "a")));
  EXPECT_FALSE(static_cast<bool>(fault::check("test.point", "b")));
  Error E = fault::check("test.point", "c");
  ASSERT_TRUE(static_cast<bool>(E));
  EXPECT_NE(E.message().find("test.point"), std::string::npos);
  EXPECT_NE(E.message().find("call 3"), std::string::npos);
  EXPECT_NE(E.message().find("(c)"), std::string::npos);
  EXPECT_FALSE(static_cast<bool>(fault::check("test.point", "d")));
  EXPECT_EQ(fault::callCount("test.point"), 4u);
  EXPECT_EQ(fault::firedCount("test.point"), 1u);
}

TEST_F(FaultInjectionTest, CountWindowFailsConsecutiveCalls) {
  fault::arm("test.window", 2, 2);
  EXPECT_FALSE(static_cast<bool>(fault::check("test.window", "")));
  EXPECT_TRUE(static_cast<bool>(fault::check("test.window", "")));
  EXPECT_TRUE(static_cast<bool>(fault::check("test.window", "")));
  EXPECT_FALSE(static_cast<bool>(fault::check("test.window", "")));
  EXPECT_EQ(fault::firedCount("test.window"), 2u);
}

TEST_F(FaultInjectionTest, CountZeroFailsForever) {
  fault::arm("test.forever", 2, 0);
  EXPECT_FALSE(static_cast<bool>(fault::check("test.forever", "")));
  for (int I = 0; I != 5; ++I)
    EXPECT_TRUE(static_cast<bool>(fault::check("test.forever", "")));
}

TEST_F(FaultInjectionTest, UnarmedPointsNeverFire) {
  EXPECT_FALSE(fault::anyArmed());
  EXPECT_FALSE(static_cast<bool>(fault::check("test.unarmed", "")));
  fault::arm("test.other", 1);
  EXPECT_TRUE(fault::anyArmed());
  EXPECT_FALSE(static_cast<bool>(fault::check("test.unarmed", "")));
  fault::disarmAll();
  EXPECT_FALSE(fault::anyArmed());
  EXPECT_FALSE(static_cast<bool>(fault::check("test.other", "")));
}

TEST_F(FaultInjectionTest, RearmReplacesScheduleAndCounters) {
  fault::arm("test.rearm", 1);
  EXPECT_TRUE(static_cast<bool>(fault::check("test.rearm", "")));
  fault::arm("test.rearm", 2);
  EXPECT_EQ(fault::callCount("test.rearm"), 0u);
  EXPECT_FALSE(static_cast<bool>(fault::check("test.rearm", "")));
  EXPECT_TRUE(static_cast<bool>(fault::check("test.rearm", "")));
}

TEST_F(FaultInjectionTest, SpecParsesEntries) {
  cantFail(fault::armFromSpec("test.a:1,test.b:2:3"));
  EXPECT_TRUE(static_cast<bool>(fault::check("test.a", "")));
  EXPECT_FALSE(static_cast<bool>(fault::check("test.b", "")));
  EXPECT_TRUE(static_cast<bool>(fault::check("test.b", "")));
}

TEST_F(FaultInjectionTest, BadSpecArmsNothing) {
  for (const char *Bad : {"nocolon", ":1", "p:zero", "p:0", "p:1:x",
                          "test.ok:1,broken"}) {
    Error E = fault::armFromSpec(Bad);
    EXPECT_TRUE(static_cast<bool>(E)) << Bad;
    EXPECT_FALSE(fault::anyArmed()) << Bad;
  }
}

//===----------------------------------------------------------------------===//
// Atomic writes under injected faults
//===----------------------------------------------------------------------===//

TEST_F(AtomicWriteTest, WriteFaultLeavesOriginalByteIdentical) {
  TempDir Dir("atomic_write");
  std::string Path = Dir.Path + "/artifact.bin";
  std::vector<uint8_t> Old{1, 2, 3, 4};
  cantFail(writeFileBytesAtomic(Path, Old));

  fault::arm("file.write", 1, 0);
  Error E = writeFileBytesAtomic(Path, {9, 9, 9});
  ASSERT_TRUE(static_cast<bool>(E));
  fault::disarmAll();

  EXPECT_EQ(cantFail(readFileBytes(Path)), Old);
  EXPECT_FALSE(fileExists(Path + ".tmp"));
}

TEST_F(AtomicWriteTest, RenameFaultLeavesOriginalAndNoTmp) {
  TempDir Dir("atomic_rename");
  std::string Path = Dir.Path + "/artifact.bin";
  std::vector<uint8_t> Old{5, 6, 7};
  cantFail(writeFileBytesAtomic(Path, Old));

  fault::arm("file.rename", 1, 0);
  Error E = writeFileBytesAtomic(Path, {8, 8});
  ASSERT_TRUE(static_cast<bool>(E));
  EXPECT_NE(E.message().find("file.rename"), std::string::npos);
  fault::disarmAll();

  EXPECT_EQ(cantFail(readFileBytes(Path)), Old);
  // The failed commit must not leave its temporary behind either.
  EXPECT_FALSE(fileExists(Path + ".tmp"));
}

TEST_F(AtomicWriteTest, ReadFaultPropagates) {
  TempDir Dir("read_fault");
  std::string Path = Dir.Path + "/artifact.bin";
  cantFail(writeFileBytesAtomic(Path, {1}));
  fault::arm("file.read", 1);
  auto Bytes = readFileBytes(Path);
  EXPECT_FALSE(static_cast<bool>(Bytes));
  EXPECT_NE(Bytes.message().find(Path), std::string::npos);
  (void)Bytes.takeError();
}

TEST_F(AtomicWriteTest, CrashMidGmonWriteKeepsPriorProfile) {
  TempDir Dir("gmon_crash");
  std::string Path = Dir.Path + "/gmon.out";
  ProfileData Old = makeRefData();
  cantFail(writeGmonFile(Path, Old));
  std::vector<uint8_t> OldBytes = cantFail(readFileBytes(Path));

  ProfileData New = makeRefData();
  New.addArc(0x60, 0x400, 6);
  for (const char *Point : {"file.write", "file.rename"}) {
    fault::arm(Point, 1, 0);
    Error E = writeGmonFile(Path, New);
    ASSERT_TRUE(static_cast<bool>(E)) << Point;
    fault::disarmAll();
    // The previous profile survives byte-identical and still parses.
    EXPECT_EQ(cantFail(readFileBytes(Path)), OldBytes) << Point;
    EXPECT_FALSE(fileExists(Path + ".tmp")) << Point;
    auto Back = readGmonFile(Path);
    ASSERT_TRUE(static_cast<bool>(Back)) << Point;
    EXPECT_EQ(Back->Arcs.size(), NumArcs) << Point;
  }
}

TEST_F(AtomicWriteTest, MultiThreadSnapshotWriteFaultLeavesNoTornGmon) {
  // The thread-aware runtime meets the crash-safe writer: a snapshot
  // merged from several threads goes through the same atomic
  // write-then-rename path as any profile artifact, so an injected
  // file.write fault mid-condense must leave the previous gmon.out
  // byte-identical and no temporary behind (docs/RUNTIME_MT.md).
  TempDir Dir("mt_snapshot");
  std::string Path = Dir.Path + "/gmon.out";

  constexpr Address Lo = 0x1000, Hi = 0x2000;
  Monitor Mon(Lo, Hi);
  auto FeedFromThreads = [&Mon] {
    std::vector<std::thread> Workers;
    for (unsigned T = 0; T != 4; ++T)
      Workers.emplace_back([&Mon, T] {
        for (Address I = 0; I != 500; ++I) {
          Mon.onCall(Lo + (I * 7 + T) % (Hi - Lo), Lo + (I % 16) * 64);
          Mon.onTick(Lo + (I * 13 + T) % (Hi - Lo));
        }
      });
    for (std::thread &W : Workers)
      W.join();
  };

  FeedFromThreads();
  cantFail(writeGmonFile(Path, Mon.finish()));
  std::vector<uint8_t> OldBytes = cantFail(readFileBytes(Path));

  // More concurrent data arrives; the next condense hits a write fault.
  FeedFromThreads();
  fault::arm("file.write", 1, 0);
  Error E = writeGmonFile(Path, Mon.finish());
  ASSERT_TRUE(static_cast<bool>(E));
  fault::disarmAll();
  EXPECT_EQ(cantFail(readFileBytes(Path)), OldBytes);
  EXPECT_FALSE(fileExists(Path + ".tmp"));
  // The surviving file still parses as the first snapshot.
  EXPECT_EQ(writeGmon(cantFail(readGmonFile(Path))), OldBytes);

  // With the fault gone the doubled snapshot commits cleanly.
  cantFail(writeGmonFile(Path, Mon.finish()));
  ProfileData Back = cantFail(readGmonFile(Path));
  ProfileData First = cantFail(readGmon(OldBytes));
  uint64_t FirstTotal = 0, BackTotal = 0;
  for (const ArcRecord &R : First.Arcs)
    FirstTotal += R.Count;
  for (const ArcRecord &R : Back.Arcs)
    BackTotal += R.Count;
  EXPECT_EQ(BackTotal, 2 * FirstTotal);
}

//===----------------------------------------------------------------------===//
// Truncation and mutation corpus
//===----------------------------------------------------------------------===//

TEST_F(FaultCorpusTest, TruncationEveryCutPoint) {
  ProfileData Ref = makeRefData();
  std::vector<uint8_t> Bytes = writeGmon(Ref);
  ASSERT_EQ(Bytes.size(), TotalSize);
  GmonReadOptions Tol;
  Tol.Tolerant = true;

  for (size_t Cut = 0; Cut != Bytes.size(); ++Cut) {
    std::vector<uint8_t> Short(Bytes.begin(), Bytes.begin() + Cut);

    // Strict mode rejects every proper prefix.
    auto Strict = readGmon(Short);
    EXPECT_FALSE(static_cast<bool>(Strict)) << "strict cut at " << Cut;
    (void)Strict.takeError();

    GmonSalvage S;
    auto Back = readGmon(Short, Tol, &S);
    if (Cut < HeaderSize) {
      // Below the salvage floor there are no usable records.
      EXPECT_FALSE(static_cast<bool>(Back)) << "tolerant cut at " << Cut;
      (void)Back.takeError();
      continue;
    }
    ASSERT_TRUE(static_cast<bool>(Back)) << "tolerant cut at " << Cut;
    EXPECT_TRUE(S.Damaged) << Cut;
    EXPECT_FALSE(S.Note.empty()) << Cut;
    EXPECT_EQ(Back->TicksPerSecond, Ref.TicksPerSecond) << Cut;
    EXPECT_EQ(Back->RunCount, Ref.RunCount) << Cut;

    if (Cut < CountsEnd) {
      // Cut inside the bucket counts: whole buckets survive, the torn
      // bucket and everything after it reads as zero, no arcs.
      size_t Whole = (Cut - HeaderSize) / 8;
      EXPECT_EQ(S.SalvagedBuckets, Whole) << Cut;
      EXPECT_EQ(S.DroppedBuckets, NumBuckets - Whole) << Cut;
      ASSERT_EQ(Back->Hist.numBuckets(), NumBuckets) << Cut;
      for (size_t B = 0; B != NumBuckets; ++B)
        EXPECT_EQ(Back->Hist.bucketCount(B), B < Whole ? B + 1 : 0u)
            << "cut " << Cut << " bucket " << B;
      EXPECT_TRUE(Back->Arcs.empty()) << Cut;
    } else if (Cut < ArcsStart) {
      // Cut inside the arc-count field: full histogram, no arcs.
      EXPECT_EQ(S.SalvagedBuckets, NumBuckets) << Cut;
      EXPECT_EQ(S.DroppedBuckets, 0u) << Cut;
      EXPECT_NE(S.Note.find("arc table count"), std::string::npos) << Cut;
      EXPECT_TRUE(Back->Arcs.empty()) << Cut;
    } else {
      // Cut inside the arc records: the exact prefix of whole records.
      size_t Whole = (Cut - ArcsStart) / 24;
      EXPECT_EQ(S.SalvagedArcs, Whole) << Cut;
      EXPECT_EQ(S.DroppedArcs, NumArcs - Whole) << Cut;
      for (size_t B = 0; B != NumBuckets; ++B)
        EXPECT_EQ(Back->Hist.bucketCount(B), B + 1) << Cut;
      ASSERT_EQ(Back->Arcs.size(), Whole) << Cut;
      for (size_t A = 0; A != Whole; ++A) {
        EXPECT_EQ(Back->Arcs[A].FromPc, Ref.Arcs[A].FromPc) << Cut;
        EXPECT_EQ(Back->Arcs[A].SelfPc, Ref.Arcs[A].SelfPc) << Cut;
        EXPECT_EQ(Back->Arcs[A].Count, Ref.Arcs[A].Count) << Cut;
      }
    }
  }
}

TEST_F(FaultCorpusTest, TolerantIntactFileReportsNoDamage) {
  GmonReadOptions Tol;
  Tol.Tolerant = true;
  GmonSalvage S;
  auto Back = readGmon(writeGmon(makeRefData()), Tol, &S);
  ASSERT_TRUE(static_cast<bool>(Back));
  EXPECT_FALSE(S.Damaged);
  EXPECT_TRUE(S.Note.empty());
  EXPECT_EQ(S.SalvagedArcs, NumArcs);
  EXPECT_EQ(S.DroppedArcs, 0u);
}

TEST_F(FaultCorpusTest, TolerantAcceptsTrailingJunk) {
  GmonReadOptions Tol;
  Tol.Tolerant = true;
  auto Bytes = writeGmon(makeRefData());
  Bytes.insert(Bytes.end(), 17, 0xEE);
  GmonSalvage S;
  auto Back = readGmon(Bytes, Tol, &S);
  ASSERT_TRUE(static_cast<bool>(Back));
  EXPECT_TRUE(S.Damaged);
  EXPECT_EQ(S.TrailingBytes, 17u);
  EXPECT_EQ(Back->Arcs.size(), NumArcs);
  EXPECT_EQ(S.SalvagedArcs, NumArcs);
  EXPECT_EQ(S.DroppedArcs, 0u);
}

TEST_F(FaultCorpusTest, TolerantStillRejectsLyingHeaders) {
  GmonReadOptions Tol;
  Tol.Tolerant = true;
  auto Valid = writeGmon(makeRefData());

  auto ExpectReject = [&](std::vector<uint8_t> Bytes, const char *What) {
    auto Back = readGmon(Bytes, Tol);
    EXPECT_FALSE(static_cast<bool>(Back)) << What;
    (void)Back.takeError();
  };

  auto BadMagic = Valid;
  BadMagic[0] = 'X';
  ExpectReject(BadMagic, "magic");
  auto BadVersion = Valid;
  BadVersion[4] = 42;
  ExpectReject(BadVersion, "version");
  auto BadNbuckets = Valid;
  BadNbuckets[45] = 0xFF; // nbuckets no longer matches the address range.
  ExpectReject(BadNbuckets, "nbuckets");
}

TEST_F(FaultCorpusTest, ByteMutationNeverCrashesEitherMode) {
  // Single-byte corruption at every offset, three flip patterns each.
  // Any outcome (reject, salvage, or a still-valid parse) is acceptable;
  // what this drives — under ASan/UBSan in sanitizer builds — is that no
  // mutation can crash, overflow, or leak in either reader mode.
  auto Bytes = writeGmon(makeRefData());
  GmonReadOptions Tol;
  Tol.Tolerant = true;
  for (size_t I = 0; I != Bytes.size(); ++I) {
    for (uint8_t Flip : {uint8_t{0x01}, uint8_t{0x80}, uint8_t{0xFF}}) {
      auto Mutated = Bytes;
      Mutated[I] ^= Flip;
      auto Strict = readGmon(Mutated);
      if (!Strict)
        (void)Strict.takeError();
      GmonSalvage S;
      auto Tolerant = readGmon(Mutated, Tol, &S);
      if (!Tolerant)
        (void)Tolerant.takeError();
    }
  }
}

TEST_F(FaultCorpusTest, TolerantSummingReportsDamagedInputs) {
  TempDir Dir("tolerant_sum");
  std::string Intact = Dir.Path + "/intact.out";
  std::string Torn = Dir.Path + "/torn.out";
  ProfileData Ref = makeRefData();
  cantFail(writeGmonFile(Intact, Ref));
  auto Bytes = writeGmon(Ref);
  // Cut after the third arc record.
  Bytes.resize(ArcsStart + 3 * 24 + 7);
  cantFail(writeFileBytes(Torn, Bytes));

  // Strict summing rejects the torn file and names it.
  auto Strict = readAndSumGmonFiles({Intact, Torn});
  ASSERT_FALSE(static_cast<bool>(Strict));
  EXPECT_NE(Strict.message().find(Torn), std::string::npos);
  (void)Strict.takeError();

  GmonReadOptions Tol;
  Tol.Tolerant = true;
  std::vector<GmonFileSalvage> Salvages;
  auto Sum = readAndSumGmonFiles({Intact, Torn}, Tol, &Salvages);
  ASSERT_TRUE(static_cast<bool>(Sum));
  ASSERT_EQ(Salvages.size(), 1u);
  EXPECT_EQ(Salvages[0].Path, Torn);
  EXPECT_EQ(Salvages[0].Salvage.SalvagedArcs, 3u);
  EXPECT_EQ(Salvages[0].Salvage.DroppedArcs, 2u);
  // Intact contributes all 5 arcs; the torn file its first 3.
  EXPECT_EQ(Sum->callsInto(0x100), 2 * (1 + 2));
  EXPECT_EQ(Sum->callsInto(0x200), 2 * 3 + 4u);
  EXPECT_EQ(Sum->callsInto(0x300), 5u);
  EXPECT_EQ(Sum->RunCount, 2 * Ref.RunCount);
}

//===----------------------------------------------------------------------===//
// Truncation and mutation corpus: the v2 context-tree record
//===----------------------------------------------------------------------===//

namespace {

/// makeRefData() plus a four-node context tree, so the file serializes
/// as version 2 with one extension section.  The tree is already in
/// canonical form (children sorted by (FromPc, SelfPc)), so the layout
/// below is exact.
ProfileData makeRefDataWithContexts() {
  ProfileData D = makeRefData();
  std::vector<CctNode> T;
  T.push_back({CctRootParent, 0x10, 0x100, 1, 2}); // main
  T.push_back({0, 0x110, 0x200, 3, 4});            // main > a (site 1)
  T.push_back({1, 0x210, 0x300, 5, 6});            // main > a > b
  T.push_back({0, 0x120, 0x200, 7, 8});            // main > a (site 2)
  D.addContextTree(T);
  return D;
}

// Serialized layout of makeRefDataWithContexts() (docs/FORMATS.md): the
// whole v1 image above, then nsections u32, then the section header
// (tag u32 + bytelen u64), then the payload (nnodes u64 + 36-byte
// nodes).  The v1 region is byte-identical except the version field.
constexpr size_t NumCtxNodes = 4;
constexpr size_t SectCountStart = TotalSize;
constexpr size_t SectHdrStart = SectCountStart + 4;
constexpr size_t CtxPayloadStart = SectHdrStart + 12;
constexpr size_t CtxNodesStart = CtxPayloadStart + 8;
constexpr size_t CtxTotalSize = CtxNodesStart + 36 * NumCtxNodes;

} // namespace

TEST_F(FaultCorpusTest, ContextFileRoundTripsAndProjectsToV1) {
  ProfileData Ref = makeRefDataWithContexts();
  std::vector<uint8_t> Bytes = writeGmon(Ref);
  ASSERT_EQ(Bytes.size(), CtxTotalSize);
  EXPECT_EQ(Bytes[4], 2) << "context-carrying files are version 2";

  // Byte-exact round trip through the strict reader.
  ProfileData Back = cantFail(readGmon(Bytes));
  EXPECT_EQ(writeGmon(Back), Bytes);
  ASSERT_EQ(Back.Contexts.size(), NumCtxNodes);
  EXPECT_EQ(Back.Contexts[2].SelfPc, 0x300u);
  EXPECT_EQ(Back.Contexts[2].Ticks, 6u);

  // Arcs-only profiles stay version 1: the v1 image of the same data is
  // the context file minus the extension region and the version byte.
  std::vector<uint8_t> V1 = writeGmon(makeRefData());
  ASSERT_EQ(V1.size(), TotalSize);
  EXPECT_EQ(V1[4], 1);
  for (size_t I = 0; I != TotalSize; ++I)
    if (I != 4)
      ASSERT_EQ(V1[I], Bytes[I]) << "v1/v2 diverge at byte " << I;
}

TEST_F(FaultCorpusTest, ContextTruncationEveryCutPoint) {
  ProfileData Ref = makeRefDataWithContexts();
  std::vector<uint8_t> Bytes = writeGmon(Ref);
  GmonReadOptions Tol;
  Tol.Tolerant = true;

  for (size_t Cut = 0; Cut != Bytes.size(); ++Cut) {
    std::vector<uint8_t> Short(Bytes.begin(), Bytes.begin() + Cut);

    auto Strict = readGmon(Short);
    EXPECT_FALSE(static_cast<bool>(Strict)) << "strict cut at " << Cut;
    (void)Strict.takeError();

    GmonSalvage S;
    auto Back = readGmon(Short, Tol, &S);
    if (Cut < HeaderSize) {
      // The salvage floor is unchanged from v1.
      EXPECT_FALSE(static_cast<bool>(Back)) << "tolerant cut at " << Cut;
      (void)Back.takeError();
      continue;
    }
    ASSERT_TRUE(static_cast<bool>(Back)) << "tolerant cut at " << Cut;
    EXPECT_TRUE(S.Damaged) << Cut;

    if (Cut < TotalSize) {
      // Cut inside the v1 region: same salvage as v1, no contexts.
      EXPECT_TRUE(Back->Contexts.empty()) << Cut;
      EXPECT_EQ(S.SalvagedContexts, 0u) << Cut;
    } else if (Cut < CtxNodesStart) {
      // Cut inside the section plumbing (count, tag, length, node
      // count): the full v1 content survives, the tree is lost whole.
      EXPECT_EQ(S.SalvagedArcs, NumArcs) << Cut;
      EXPECT_TRUE(Back->Contexts.empty()) << Cut;
      EXPECT_EQ(S.SalvagedContexts, 0u) << Cut;
      EXPECT_FALSE(S.Note.empty()) << Cut;
    } else {
      // Cut inside the node records: the exact prefix of whole nodes.
      size_t Whole = (Cut - CtxNodesStart) / 36;
      EXPECT_EQ(S.SalvagedContexts, Whole) << Cut;
      EXPECT_EQ(S.DroppedContexts, NumCtxNodes - Whole) << Cut;
      ASSERT_EQ(Back->Contexts.size(), Whole) << Cut;
      for (size_t N = 0; N != Whole; ++N) {
        EXPECT_EQ(Back->Contexts[N].SelfPc, Ref.Contexts[N].SelfPc) << Cut;
        EXPECT_EQ(Back->Contexts[N].Calls, Ref.Contexts[N].Calls) << Cut;
        EXPECT_EQ(Back->Contexts[N].Ticks, Ref.Contexts[N].Ticks) << Cut;
      }
    }
  }
}

TEST_F(FaultCorpusTest, ContextByteMutationNeverCrashesEitherMode) {
  auto Bytes = writeGmon(makeRefDataWithContexts());
  GmonReadOptions Tol;
  Tol.Tolerant = true;
  for (size_t I = 0; I != Bytes.size(); ++I) {
    for (uint8_t Flip : {uint8_t{0x01}, uint8_t{0x80}, uint8_t{0xFF}}) {
      auto Mutated = Bytes;
      Mutated[I] ^= Flip;
      auto Strict = readGmon(Mutated);
      if (!Strict)
        (void)Strict.takeError();
      GmonSalvage S;
      auto Tolerant = readGmon(Mutated, Tol, &S);
      if (!Tolerant)
        (void)Tolerant.takeError();
    }
  }
}

TEST_F(FaultCorpusTest, ContextTolerantStillRejectsLyingSections) {
  auto Valid = writeGmon(makeRefDataWithContexts());
  GmonReadOptions Tol;
  Tol.Tolerant = true;

  auto ExpectReject = [&](std::vector<uint8_t> Bytes, const char *What) {
    auto Strict = readGmon(Bytes);
    EXPECT_FALSE(static_cast<bool>(Strict)) << What << " (strict)";
    (void)Strict.takeError();
    auto Lax = readGmon(Bytes, Tol);
    EXPECT_FALSE(static_cast<bool>(Lax)) << What << " (tolerant)";
    (void)Lax.takeError();
  };

  // Tolerance is for truncation, not for headers that lie about intact
  // bytes.  Section length disagreeing with the node count:
  auto BadLen = Valid;
  BadLen[SectHdrStart + 4] ^= 0x04;
  ExpectReject(BadLen, "length mismatch");

  // A node naming a later node (or itself) as parent would let the
  // analyzer's accumulation loop run away:
  auto BadParent = Valid;
  BadParent[CtxNodesStart + 36] = 9; // node 1's parent -> 9
  ExpectReject(BadParent, "invalid parent");

  // An implausible section count:
  auto BadCount = Valid;
  BadCount[SectCountStart] = 0xFF;
  ExpectReject(BadCount, "section count");
}

TEST_F(FaultCorpusTest, UnknownExtensionSectionIsSkippedCleanly) {
  // Forward compatibility: append a second section with an unknown tag;
  // both modes must skip it whole and still deliver the context tree.
  ProfileData Ref = makeRefDataWithContexts();
  auto Bytes = writeGmon(Ref);
  Bytes[SectCountStart] = 2; // nsections: 1 -> 2
  const uint8_t Unknown[] = {0x58, 0x58, 0x58, 0x58, // tag "XXXX"
                             5,    0,    0,    0,    0, 0, 0, 0, // len 5
                             1,    2,    3,    4,    5};         // payload
  Bytes.insert(Bytes.end(), std::begin(Unknown), std::end(Unknown));

  for (bool Tolerant : {false, true}) {
    GmonReadOptions Opts;
    Opts.Tolerant = Tolerant;
    GmonSalvage S;
    auto Back = readGmon(Bytes, Opts, &S);
    ASSERT_TRUE(static_cast<bool>(Back)) << "tolerant=" << Tolerant;
    EXPECT_EQ(Back->Contexts.size(), NumCtxNodes) << "tolerant=" << Tolerant;
    EXPECT_FALSE(S.Damaged) << "tolerant=" << Tolerant;
    // Re-serializing drops the unknown section (we cannot regenerate
    // what we did not understand) but keeps the tree.
    EXPECT_EQ(writeGmon(*Back), writeGmon(Ref)) << "tolerant=" << Tolerant;
  }
}

//===----------------------------------------------------------------------===//
// Store fault sweep: a failed operation never leaves a torn artifact
//===----------------------------------------------------------------------===//

TEST_F(StoreFaultTest, PutFaultSweepLeavesPriorArtifactsIntact) {
  TempDir Dir("put_sweep");
  std::string Root = Dir.Path + "/store";
  StoreOptions NoRetry;
  NoRetry.IoRetries = 0;
  std::string Input = Dir.Path + "/incoming.gmon";
  cantFail(writeGmonFile(Input, makeStoreShard(3)));
  {
    auto Store = ProfileStore::open(Root, NoRetry);
    ASSERT_TRUE(static_cast<bool>(Store));
    cantFail(Store->put(makeStoreShard(1)).takeError());
    cantFail(Store->put(makeStoreShard(2)).takeError());
  }
  auto Before = snapshotTree(Root);

  // One case per (point, call depth) that a single ingest reaches: put
  // checks store.put once, writes twice (object, then index) and renames
  // twice; putFile reads the incoming gmon once.  Every case must fail the
  // ingest and leave all prior artifacts byte-identical.
  struct SweepCase {
    const char *Point;
    uint64_t Nth;
    bool ViaFile;
  };
  const SweepCase Cases[] = {
      {"store.put", 1, false},   {"file.read", 1, true},
      {"file.write", 1, false},  {"file.write", 2, false},
      {"file.rename", 1, false}, {"file.rename", 2, false},
  };
  for (const SweepCase &C : Cases) {
    auto Store = ProfileStore::open(Root, NoRetry);
    ASSERT_TRUE(static_cast<bool>(Store)) << C.Point;
    fault::arm(C.Point, C.Nth, 0);
    Error E = C.ViaFile ? Store->putFile(Input).takeError()
                        : Store->put(makeStoreShard(3)).takeError();
    EXPECT_TRUE(static_cast<bool>(E)) << C.Point << " nth " << C.Nth;
    fault::disarmAll();

    // Every prior artifact survives byte-identical, and the failed write
    // leaves no temporary behind.
    for (const auto &[Path, Bytes] : Before)
      EXPECT_EQ(cantFail(readFileBytes(Path)), Bytes)
          << C.Point << " nth " << C.Nth << ": " << Path;
    EXPECT_FALSE(anyTmpFile(Root)) << C.Point << " nth " << C.Nth;

    // An object that landed before a later fault is complete (never torn)
    // and unindexed; gc from a fresh handle restores the reference tree.
    auto Fresh = ProfileStore::open(Root, NoRetry);
    ASSERT_TRUE(static_cast<bool>(Fresh)) << C.Point;
    cantFail(Fresh->gc().takeError());
    EXPECT_EQ(snapshotTree(Root), Before) << C.Point << " nth " << C.Nth;
  }
}

TEST_F(StoreFaultTest, MergeFaultSweepLeavesStoreIntact) {
  TempDir Dir("merge_sweep");
  std::string Root = Dir.Path + "/store";
  StoreOptions NoRetry;
  NoRetry.IoRetries = 0;
  auto Store = ProfileStore::open(Root, NoRetry);
  ASSERT_TRUE(static_cast<bool>(Store));
  cantFail(Store->put(makeStoreShard(1)).takeError());
  cantFail(Store->put(makeStoreShard(2)).takeError());
  auto Before = snapshotTree(Root);

  // A cache-miss merge checks store.merge once, reads one object per
  // member shard, then writes and renames the cache entry once each.
  struct SweepCase {
    const char *Point;
    uint64_t Nth;
  };
  const SweepCase Cases[] = {
      {"store.merge", 1}, {"file.read", 1},   {"file.read", 2},
      {"file.write", 1},  {"file.rename", 1},
  };
  for (const SweepCase &C : Cases) {
    fault::arm(C.Point, C.Nth, 0);
    auto Result = Store->merge({});
    EXPECT_FALSE(static_cast<bool>(Result)) << C.Point << " nth " << C.Nth;
    (void)Result.takeError();
    fault::disarmAll();
    // The failed merge changes nothing: no torn cache entry under the
    // aggregate key, no temporary, every prior artifact byte-identical.
    EXPECT_FALSE(anyTmpFile(Root)) << C.Point << " nth " << C.Nth;
    EXPECT_EQ(snapshotTree(Root), Before) << C.Point << " nth " << C.Nth;
  }

  // Unarmed, the same merge succeeds and its cache entry parses cleanly.
  auto Result = Store->merge({});
  ASSERT_TRUE(static_cast<bool>(Result));
  auto Cached = readGmonFile(Store->cachePath(Result->Digest));
  ASSERT_TRUE(static_cast<bool>(Cached));
  EXPECT_EQ(writeGmon(*Cached), writeGmon(Result->Data));
}

TEST_F(StoreFaultTest, GcFaultFailsWithoutSweeping) {
  TempDir Dir("gc_fault");
  std::string Root = Dir.Path + "/store";
  auto Store = ProfileStore::open(Root);
  ASSERT_TRUE(static_cast<bool>(Store));
  cantFail(Store->put(makeStoreShard(1)).takeError());
  cantFail(Store->merge({}).takeError()); // Populate the cache.
  auto Before = snapshotTree(Root);

  fault::arm("store.gc", 1);
  auto Stats = Store->gc();
  EXPECT_FALSE(static_cast<bool>(Stats));
  (void)Stats.takeError();
  fault::disarmAll();
  EXPECT_EQ(snapshotTree(Root), Before);
}

TEST_F(StoreFaultTest, RetrySurvivesTransientWriteFault) {
  TempDir Dir("retry");
  std::string Root = Dir.Path + "/store";
  StoreOptions Opts;
  Opts.IoRetries = 1;
  Opts.RetryBackoffMs = 0;
  auto Store = ProfileStore::open(Root, Opts);
  ASSERT_TRUE(static_cast<bool>(Store));

  // One transient fault on the first write: the retry succeeds and the
  // ingest completes as if nothing happened.
  fault::arm("file.write", 1); // Count 1: only the first call fails.
  auto Digest = Store->put(makeStoreShard(7));
  uint64_t Fired = fault::firedCount("file.write");
  fault::disarmAll();
  ASSERT_TRUE(static_cast<bool>(Digest));
  EXPECT_EQ(Fired, 1u); // The fault really struck; the retry absorbed it.
  auto Loaded = Store->loadShard(*Digest);
  ASSERT_TRUE(static_cast<bool>(Loaded));
  EXPECT_EQ(Loaded->Arcs.size(), 1u);

  // With retries disabled the same fault is fatal.
  StoreOptions NoRetry;
  NoRetry.IoRetries = 0;
  auto Store2 = ProfileStore::open(Root + "2", NoRetry);
  ASSERT_TRUE(static_cast<bool>(Store2));
  fault::arm("file.write", 1);
  auto Failed = Store2->put(makeStoreShard(7));
  EXPECT_FALSE(static_cast<bool>(Failed));
  (void)Failed.takeError();
}

TEST_F(StoreFaultTest, GcSweepsStaleTempFiles) {
  TempDir Dir("tmp_sweep");
  std::string Root = Dir.Path + "/store";
  auto Store = ProfileStore::open(Root);
  ASSERT_TRUE(static_cast<bool>(Store));
  cantFail(Store->put(makeStoreShard(1)).takeError());
  // Plant the residue an interrupted writer (pre-rename crash) leaves.
  cantFail(writeFileText(Root + "/index.bin.tmp", "torn"));
  cantFail(writeFileText(Root + "/cache/deadbeef.gmon.tmp", "torn"));

  auto Stats = Store->gc();
  ASSERT_TRUE(static_cast<bool>(Stats));
  EXPECT_EQ(Stats->TempFiles, 2u);
  EXPECT_FALSE(anyTmpFile(Root));
  // The shard object and index survive.
  EXPECT_TRUE(fileExists(Root + "/index.bin"));
  EXPECT_TRUE(fileExists(Store->objectPath(Store->shards().front().Digest)));
}

TEST_F(StoreFaultTest, TolerantStoreIngestsTruncatedShard) {
  TempDir Dir("tolerant_put");
  std::string Torn = Dir.Path + "/torn.out";
  auto Bytes = writeGmon(makeRefData());
  Bytes.resize(ArcsStart + 2 * 24); // Keep two whole arc records.
  cantFail(writeFileBytes(Torn, Bytes));

  // Strict store: rejected.
  auto Strict = ProfileStore::open(Dir.Path + "/strict");
  ASSERT_TRUE(static_cast<bool>(Strict));
  auto Rejected = Strict->putFile(Torn);
  EXPECT_FALSE(static_cast<bool>(Rejected));
  (void)Rejected.takeError();

  // Tolerant store: the salvaged prefix is ingested.
  StoreOptions Tol;
  Tol.TolerantReads = true;
  auto Store = ProfileStore::open(Dir.Path + "/tolerant", Tol);
  ASSERT_TRUE(static_cast<bool>(Store));
  auto Digest = Store->putFile(Torn);
  ASSERT_TRUE(static_cast<bool>(Digest));
  auto Loaded = Store->loadShard(*Digest);
  ASSERT_TRUE(static_cast<bool>(Loaded));
  EXPECT_EQ(Loaded->Arcs.size(), 2u);
  EXPECT_EQ(Loaded->Hist.totalSamples(), makeRefData().Hist.totalSamples());
}

TEST_F(StoreFaultTest, CompactionFaultSweepNeverTearsStore) {
  // Crash-safety of the tiered fold: a fault at any I/O step of a
  // compaction leaves the store byte-identical — or cleanly advanced by
  // one committed run file that gc() sweeps — and reports stay exact.
  TempDir Dir("compact_sweep");
  std::string Root = Dir.Path + "/store";
  StoreOptions NoRetry;
  NoRetry.IoRetries = 0;
  NoRetry.CompactionFanout = 2;
  auto Store = ProfileStore::open(Root, NoRetry);
  ASSERT_TRUE(static_cast<bool>(Store));
  for (uint64_t S = 1; S <= 4; ++S)
    cantFail(Store->put(makeStoreShard(S), Sha256Digest{}, "profile", S)
                 .takeError());
  auto Reference = Store->merge({});
  ASSERT_TRUE(static_cast<bool>(Reference));
  std::vector<uint8_t> RefBytes = writeGmon(Reference->Data);
  auto Before = snapshotTree(Root);

  // A fanout-2 fold checks store.compact once, reads one object per
  // folded input, then writes and renames the run file followed by the
  // index.  Write/rename faults past the run-file commit advance the
  // store by one orphan run; everything earlier must change nothing.
  struct SweepCase {
    const char *Point;
    uint64_t Nth;
  };
  const SweepCase Cases[] = {
      {"store.compact", 1}, {"file.read", 1},   {"file.read", 2},
      {"file.write", 1},    {"file.write", 2},  {"file.rename", 1},
      {"file.rename", 2},
  };
  for (const SweepCase &C : Cases) {
    fault::arm(C.Point, C.Nth, 0);
    auto Worked = Store->compactStep();
    EXPECT_FALSE(static_cast<bool>(Worked)) << C.Point << " nth " << C.Nth;
    (void)Worked.takeError();
    fault::disarmAll();

    // No torn temporary, and every prior artifact byte-identical.
    EXPECT_FALSE(anyTmpFile(Root)) << C.Point << " nth " << C.Nth;
    for (const auto &[Path, Bytes] : Before)
      EXPECT_EQ(cantFail(readFileBytes(Path)), Bytes)
          << C.Point << " nth " << C.Nth << ": " << Path;

    // A fresh handle sees the pre-fold index; gc sweeps any orphan run
    // the interrupted commit stranded, restoring the reference tree.
    auto Fresh = ProfileStore::open(Root, NoRetry);
    ASSERT_TRUE(static_cast<bool>(Fresh)) << C.Point;
    EXPECT_TRUE(Fresh->runs().empty()) << C.Point << " nth " << C.Nth;
    cantFail(Fresh->gc().takeError());
    EXPECT_EQ(snapshotTree(Root), Before) << C.Point << " nth " << C.Nth;

    // Reports over the recovered store are still byte-exact.
    cantFail(removeFile(Fresh->cachePath(Reference->Digest)));
    auto Merged = Fresh->merge({});
    ASSERT_TRUE(static_cast<bool>(Merged)) << C.Point << " nth " << C.Nth;
    EXPECT_EQ(writeGmon(Merged->Data), RefBytes)
        << C.Point << " nth " << C.Nth;
    EXPECT_EQ(snapshotTree(Root), Before) << C.Point << " nth " << C.Nth;
  }

  // Unarmed, compaction converges and the compacted report matches the
  // flat reference bytes.
  cantFail(Store->compact().takeError());
  EXPECT_FALSE(Store->compactionPending());
  EXPECT_FALSE(Store->runs().empty());
  cantFail(removeFile(Store->cachePath(Reference->Digest)));
  auto Compacted = Store->merge({});
  ASSERT_TRUE(static_cast<bool>(Compacted));
  EXPECT_GT(Compacted->RunsUsed, 0u);
  EXPECT_EQ(writeGmon(Compacted->Data), RefBytes);
}

TEST_F(StoreFaultTest, CompactionFaultMidSequenceResumesCleanly) {
  // A fold that dies between two committed folds must not disturb the
  // earlier ones: rerunning compaction picks up where it left off and the
  // final state is identical to an uninterrupted pass.
  TempDir Dir("compact_resume");
  std::string Root = Dir.Path + "/store";
  StoreOptions NoRetry;
  NoRetry.IoRetries = 0;
  NoRetry.CompactionFanout = 2;
  auto Store = ProfileStore::open(Root, NoRetry);
  ASSERT_TRUE(static_cast<bool>(Store));
  for (uint64_t S = 1; S <= 4; ++S)
    cantFail(Store->put(makeStoreShard(S), Sha256Digest{}, "profile", S)
                 .takeError());
  auto Reference = Store->merge({});
  ASSERT_TRUE(static_cast<bool>(Reference));

  // First fold commits; the second dies writing its run file.
  cantFail(Store->compactStep().takeError());
  ASSERT_EQ(Store->runs().size(), 1u);
  fault::arm("file.write", 1, 0);
  auto Died = Store->compactStep();
  EXPECT_FALSE(static_cast<bool>(Died));
  (void)Died.takeError();
  fault::disarmAll();
  // The committed fold survives the failed one.
  ASSERT_EQ(Store->runs().size(), 1u);
  EXPECT_TRUE(fileExists(Store->runPath(Store->runs()[0].Digest)));

  // Resume: compaction converges and reports stay byte-exact.
  cantFail(Store->compact().takeError());
  EXPECT_FALSE(Store->compactionPending());
  cantFail(removeFile(Store->cachePath(Reference->Digest)));
  auto Merged = Store->merge({});
  ASSERT_TRUE(static_cast<bool>(Merged));
  EXPECT_EQ(writeGmon(Merged->Data), writeGmon(Reference->Data));
}
