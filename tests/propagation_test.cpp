//===- tests/propagation_test.cpp - Deeper time-propagation properties ----===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property tests for time propagation on graphs *with* cycles — the case
/// the simple recurrence cannot handle and the reason the paper reaches
/// for Tarjan.  The governing invariant is conservation: every sampled
/// second is attributed somewhere, and all of it flows to the entry
/// points (spontaneously activated routines), whether the paths pass
/// through cycles or not.
///
//===----------------------------------------------------------------------===//

#include "core/Analyzer.h"
#include "core/SyntheticProfile.h"
#include "graph/CallGraph.h"
#include "graph/Generators.h"
#include "graph/Tarjan.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <set>

using namespace gprof;

namespace {

ProfileReport analyzeBuilder(const SyntheticProfileBuilder &B,
                             AnalyzerOptions Opts = {}) {
  auto In = B.build();
  Analyzer A(std::move(In.Syms), std::move(Opts));
  A.setStaticArcs(In.StaticArcs);
  return cantFail(A.analyze(In.Data));
}

} // namespace

//===----------------------------------------------------------------------===//
// Hand-checked multi-cycle scenarios
//===----------------------------------------------------------------------===//

TEST(CyclePropagationTest, CycleCallingACycle) {
  // main -> {a,b} cycle -> {c,d} cycle -> leaf.  Time flows leaf -> inner
  // cycle -> outer cycle -> main, whole cycles at a time.
  SyntheticProfileBuilder B(100);
  uint32_t Main = B.addFunction("main");
  uint32_t A = B.addFunction("a");
  uint32_t Bf = B.addFunction("b");
  uint32_t C = B.addFunction("c");
  uint32_t D = B.addFunction("d");
  uint32_t Leaf = B.addFunction("leaf");
  B.addSpontaneous(Main);
  B.addCall(Main, A, 4);
  B.addCall(A, Bf, 10);
  B.addCall(Bf, A, 9);
  B.addCall(Bf, C, 6);
  B.addCall(C, D, 20);
  B.addCall(D, C, 19);
  B.addCall(D, Leaf, 8);
  B.setSelfSeconds(A, 1.0);
  B.setSelfSeconds(Bf, 1.0);
  B.setSelfSeconds(C, 2.0);
  B.setSelfSeconds(D, 2.0);
  B.setSelfSeconds(Leaf, 3.0);
  ProfileReport R = analyzeBuilder(B);

  ASSERT_EQ(R.Cycles.size(), 2u);
  // Inner cycle {c,d}: self 4.0, inherits leaf's 3.0.
  // Outer cycle {a,b}: self 2.0, inherits all of inner (sole caller).
  uint32_t InnerNum = R.Functions[R.findFunction("c")].CycleNumber;
  uint32_t OuterNum = R.Functions[R.findFunction("a")].CycleNumber;
  ASSERT_NE(InnerNum, 0u);
  ASSERT_NE(OuterNum, 0u);
  ASSERT_NE(InnerNum, OuterNum);
  const CycleEntry &Inner = R.Cycles[InnerNum - 1];
  const CycleEntry &Outer = R.Cycles[OuterNum - 1];
  EXPECT_NEAR(Inner.SelfTime, 4.0, 1e-9);
  EXPECT_NEAR(Inner.ChildTime, 3.0, 1e-9);
  EXPECT_NEAR(Outer.SelfTime, 2.0, 1e-9);
  EXPECT_NEAR(Outer.ChildTime, 7.0, 1e-9);
  // main gets everything.
  EXPECT_NEAR(R.Functions[Main].totalTime(), 9.0, 1e-9);
  (void)Main;
}

TEST(CyclePropagationTest, CycleTimeSharedByArcCounts) {
  // Two callers into a 3-cycle with 1/4 and 3/4 of the external calls.
  SyntheticProfileBuilder B(100);
  uint32_t P1 = B.addFunction("p1");
  uint32_t P2 = B.addFunction("p2");
  uint32_t X = B.addFunction("x");
  uint32_t Y = B.addFunction("y");
  uint32_t Z = B.addFunction("z");
  B.addSpontaneous(P1);
  B.addSpontaneous(P2);
  B.addCall(P1, X, 1);
  B.addCall(P2, Y, 3);
  B.addCall(X, Y, 5);
  B.addCall(Y, Z, 5);
  B.addCall(Z, X, 4);
  B.setSelfSeconds(X, 2.0);
  B.setSelfSeconds(Y, 1.0);
  B.setSelfSeconds(Z, 1.0);
  ProfileReport R = analyzeBuilder(B);
  ASSERT_EQ(R.Cycles.size(), 1u);
  EXPECT_EQ(R.Cycles[0].ExternalCalls, 4u);
  EXPECT_NEAR(R.Functions[P1].ChildTime, 1.0, 1e-9); // 1/4 of 4.0
  EXPECT_NEAR(R.Functions[P2].ChildTime, 3.0, 1e-9); // 3/4 of 4.0
}

TEST(CyclePropagationTest, SelfArcInsideCycleStillIgnored) {
  SyntheticProfileBuilder B(100);
  uint32_t Main = B.addFunction("main");
  uint32_t A = B.addFunction("a");
  uint32_t C = B.addFunction("c");
  B.addSpontaneous(Main);
  B.addCall(Main, A, 2);
  B.addCall(A, C, 3);
  B.addCall(C, A, 2);
  B.addCall(A, A, 50); // Self recursion of a cycle member.
  B.setSelfSeconds(A, 1.0);
  B.setSelfSeconds(C, 1.0);
  ProfileReport R = analyzeBuilder(B);
  ASSERT_EQ(R.Cycles.size(), 1u);
  // Self calls appear in the member's entry, not the cycle's external
  // count.
  EXPECT_EQ(R.Cycles[0].ExternalCalls, 2u);
  EXPECT_EQ(R.Functions[A].SelfCalls, 50u);
  EXPECT_NEAR(R.Functions[Main].ChildTime, 2.0, 1e-9);
  (void)Main;
}

//===----------------------------------------------------------------------===//
// Property: conservation on arbitrary random graphs (cycles included)
//===----------------------------------------------------------------------===//

class CycleConservationTest : public testing::TestWithParam<uint64_t> {};

TEST_P(CycleConservationTest, AllTimeReachesTheEntryPoints) {
  CallGraph G = makeRandomGraph(/*NumNodes=*/30, /*NumArcs=*/70,
                                /*MaxCount=*/12, /*SelfArcProb=*/0.08,
                                GetParam());
  SplitMix64 Rng(GetParam() * 13 + 5);

  SyntheticProfileBuilder B(100);
  for (NodeId N = 0; N != G.numNodes(); ++N) {
    B.addFunction(G.nodeName(N));
    B.setSelfSeconds(static_cast<uint32_t>(N),
                     static_cast<double>(Rng.nextInRange(0, 100)) / 100.0);
  }
  for (ArcId A = 0; A != G.numArcs(); ++A) {
    const Arc &E = G.arc(A);
    B.addCall(E.From, E.To, E.Count);
  }

  // Entry points: one spontaneous activation for every node in a
  // condensation root (no callers outside its own component), so all
  // attributed time has somewhere to drain.
  SCCResult SCCs = findSCCs(G);
  std::set<uint32_t> RootComponents;
  for (uint32_t Comp = 0; Comp != SCCs.Components.size(); ++Comp)
    RootComponents.insert(Comp);
  for (ArcId A = 0; A != G.numArcs(); ++A) {
    const Arc &E = G.arc(A);
    if (SCCs.ComponentOf[E.From] != SCCs.ComponentOf[E.To])
      RootComponents.erase(SCCs.ComponentOf[E.To]);
  }
  std::vector<NodeId> Entries;
  for (uint32_t Comp : RootComponents) {
    NodeId N = SCCs.Components[Comp].front();
    B.addSpontaneous(N);
    Entries.push_back(N);
  }

  ProfileReport R = analyzeBuilder(B);

  // Conservation: the entry nodes' totals sum to the whole program.
  // For an entry inside a cycle, the cycle's total is the right unit.
  double EntryTotal = 0.0;
  std::set<uint32_t> CountedCycles;
  for (NodeId N : Entries) {
    const FunctionEntry &F = R.Functions[N];
    if (F.CycleNumber != 0) {
      if (CountedCycles.insert(F.CycleNumber).second)
        EntryTotal += R.Cycles[F.CycleNumber - 1].totalTime();
    } else {
      EntryTotal += F.totalTime();
    }
  }
  EXPECT_NEAR(EntryTotal, R.TotalTime, 1e-6) << "seed " << GetParam();

  // Sanity: no negative or NaN times anywhere.
  for (const FunctionEntry &F : R.Functions) {
    EXPECT_GE(F.SelfTime, 0.0);
    EXPECT_GE(F.ChildTime, 0.0);
    EXPECT_EQ(F.ChildTime, F.ChildTime); // NaN check.
  }
  for (const ReportArc &A : R.Arcs) {
    EXPECT_GE(A.PropSelf, 0.0);
    EXPECT_GE(A.PropChild, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CycleConservationTest,
                         testing::Range<uint64_t>(0, 14));
