//===- tests/integration_test.cpp - Full-pipeline scenarios ---------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end tests driving the whole system the way a user would:
/// TL source -> compiler (-pg) -> VM + monitor -> gmon data -> analyzer ->
/// listings, asserting semantic facts about the resulting profiles.
///
//===----------------------------------------------------------------------===//

#include "core/Analyzer.h"
#include "core/FlatPrinter.h"
#include "core/GraphPrinter.h"
#include "gmon/GmonFile.h"
#include "prof/ProfBaseline.h"
#include "runtime/Monitor.h"
#include "vm/CodeGen.h"
#include "vm/VM.h"

#include <gtest/gtest.h>

using namespace gprof;

namespace {

struct PipelineResult {
  Image Img;
  ProfileData Data;
  ProfileReport Report;
  RunResult Run;
};

/// Compiles with -pg, runs under a monitor, round-trips the gmon bytes,
/// and analyzes.
PipelineResult runPipeline(std::string_view Source,
                           AnalyzerOptions Opts = {},
                           uint64_t CyclesPerTick = 200) {
  CodeGenOptions CG;
  CG.EnableProfiling = true;
  PipelineResult P{compileTLOrDie(Source, CG), {}, {}, {}};

  Monitor Mon(P.Img.lowPc(), P.Img.highPc());
  VMOptions VO;
  VO.CyclesPerTick = CyclesPerTick;
  VM Machine(P.Img, VO);
  Machine.setHooks(&Mon);
  P.Run = cantFail(Machine.run());

  P.Data = cantFail(readGmon(writeGmon(Mon.finish())));
  P.Report = cantFail(analyzeImageProfile(P.Img, P.Data, Opts));
  return P;
}

const FunctionEntry &fn(const ProfileReport &R, const std::string &Name) {
  uint32_t I = R.findFunction(Name);
  EXPECT_NE(I, ~0u) << Name;
  return R.Functions[I];
}

} // namespace

TEST(IntegrationTest, SelfRecursionProfile) {
  PipelineResult P = runPipeline(R"(
    fn fib(n) {
      if (n < 2) { return n; }
      return fib(n - 1) + fib(n - 2);
    }
    fn main() { return fib(16); }
  )");
  // fib(16): called once from main; fib calls itself fib(16)-count times.
  const FunctionEntry &Fib = fn(P.Report, "fib");
  EXPECT_EQ(Fib.Calls, 1u);
  EXPECT_GT(Fib.SelfCalls, 1000u);
  // Recursion must not create a cycle entry (self arcs are special).
  EXPECT_TRUE(P.Report.Cycles.empty());
  // All of fib's time flows to main.
  EXPECT_NEAR(fn(P.Report, "main").totalTime(), P.Report.TotalTime, 1e-6);
  // The flat profile ranks fib first.
  EXPECT_EQ(P.Report.Functions[P.Report.FlatOrder[0]].Name, "fib");
}

TEST(IntegrationTest, MutualRecursionBecomesCycle) {
  PipelineResult P = runPipeline(R"(
    fn even(n) { if (n == 0) { return 1; } return odd(n - 1); }
    fn odd(n) { if (n == 0) { return 0; } return even(n - 1); }
    fn main() {
      var acc = 0;
      var i = 0;
      while (i < 50) { acc = acc + even(i); i = i + 1; }
      return acc;
    }
  )");
  ASSERT_EQ(P.Report.Cycles.size(), 1u);
  const CycleEntry &Cycle = P.Report.Cycles[0];
  EXPECT_EQ(Cycle.Members.size(), 2u);
  EXPECT_EQ(fn(P.Report, "even").CycleNumber, 1u);
  EXPECT_EQ(fn(P.Report, "odd").CycleNumber, 1u);
  // External calls: main -> even, 50 times.
  EXPECT_EQ(Cycle.ExternalCalls, 50u);
  EXPECT_GT(Cycle.InternalCalls, 50u);
  // The listing renders the cycle as an entity.
  std::string Listing = printCallGraph(P.Report);
  EXPECT_NE(Listing.find("<cycle 1 as a whole>"), std::string::npos);
}

TEST(IntegrationTest, FunctionalParametersMultiCalleeSite) {
  PipelineResult P = runPipeline(R"(
    fn twice(x) { return 2 * x; }
    fn thrice(x) { return 3 * x; }
    fn apply(f, x) { return f(x); }
    fn main() {
      var acc = 0;
      var i = 0;
      while (i < 30) {
        if (i % 2 == 0) { acc = acc + apply(&twice, i); }
        else { acc = acc + apply(&thrice, i); }
        i = i + 1;
      }
      return acc;
    }
  )");
  // The single call site inside apply reaches both callees: the paper's
  // collision case.  Find two raw arcs with the same FromPc.
  Address ApplySite = 0;
  int CalleesFromApply = 0;
  for (const ArcRecord &A : P.Data.Arcs) {
    const FuncInfo *Caller = P.Img.findFunctionContaining(A.FromPc);
    if (Caller && Caller->Name == "apply") {
      if (ApplySite == 0)
        ApplySite = A.FromPc;
      EXPECT_EQ(A.FromPc, ApplySite) << "one indirect call site expected";
      ++CalleesFromApply;
    }
  }
  EXPECT_EQ(CalleesFromApply, 2);
  EXPECT_EQ(fn(P.Report, "twice").Calls, 15u);
  EXPECT_EQ(fn(P.Report, "thrice").Calls, 15u);
}

TEST(IntegrationTest, TimeConservationSingleRoot) {
  PipelineResult P = runPipeline(R"(
    fn leafa(n) { var i = 0; var a = 0;
      while (i < n) { a = a + i * i; i = i + 1; } return a; }
    fn leafb(n) { var i = 0; var a = 0;
      while (i < n) { a = a + i; i = i + 1; } return a; }
    fn mid(n) { return leafa(n) + leafb(n * 2); }
    fn main() {
      var acc = 0;
      var i = 0;
      while (i < 40) { acc = acc + mid(50); i = i + 1; }
      return acc;
    }
  )");
  // main inherits everything; totals are conserved.
  EXPECT_NEAR(fn(P.Report, "main").totalTime(), P.Report.TotalTime, 1e-6);
  double MidTotal = fn(P.Report, "mid").totalTime();
  double LeafTotal = fn(P.Report, "leafa").totalTime() +
                     fn(P.Report, "leafb").totalTime();
  EXPECT_GE(MidTotal + 1e-9, LeafTotal);
  // Total attributed time equals the sampled seconds (every sample lands
  // inside some routine on the VM).
  EXPECT_NEAR(P.Report.TotalTime, P.Data.sampledSeconds(), 1e-6);
  EXPECT_NEAR(P.Report.UnattributedTime, 0.0, 1e-9);
}

TEST(IntegrationTest, MergedRunsDoubleEverything) {
  const char *Source = R"(
    fn work(n) { var i = 0; var a = 0;
      while (i < n) { a = a + i; i = i + 1; } return a; }
    fn main() { return work(500); }
  )";
  PipelineResult P1 = runPipeline(Source);
  PipelineResult P2 = runPipeline(Source);

  ProfileData Merged = P1.Data;
  cantFail(Merged.merge(P2.Data));
  ProfileReport R = cantFail(analyzeImageProfile(P1.Img, Merged));

  EXPECT_EQ(R.RunCount, 2u);
  EXPECT_EQ(fn(R, "work").Calls, 2 * fn(P1.Report, "work").Calls);
  EXPECT_NEAR(fn(R, "work").SelfTime,
              2 * fn(P1.Report, "work").SelfTime, 1e-6);
}

TEST(IntegrationTest, GmonFilesOnDiskSum) {
  const char *Source = R"(
    fn work(n) { var i = 0; var a = 0;
      while (i < n) { a = a + i; i = i + 1; } return a; }
    fn main() { return work(300); }
  )";
  PipelineResult P = runPipeline(Source);
  std::string Path1 = testing::TempDir() + "/integ_gmon_1.out";
  std::string Path2 = testing::TempDir() + "/integ_gmon_2.out";
  cantFail(writeGmonFile(Path1, P.Data));
  cantFail(writeGmonFile(Path2, P.Data));
  auto Sum = readAndSumGmonFiles({Path1, Path2});
  ASSERT_TRUE(static_cast<bool>(Sum));
  EXPECT_EQ(Sum->RunCount, 2u);
  EXPECT_EQ(Sum->Hist.totalSamples(), 2 * P.Data.Hist.totalSamples());
  std::remove(Path1.c_str());
  std::remove(Path2.c_str());
}

TEST(IntegrationTest, UnprofiledRoutineRunsAtFullSpeed) {
  const char *Source = R"(
    fn hot(n) { var i = 0; var a = 0;
      while (i < n) { a = a + i * 3; i = i + 1; } return a; }
    fn main() { return hot(4000); }
  )";
  CodeGenOptions CG;
  CG.EnableProfiling = true;
  CG.UnprofiledFunctions = {"hot"};
  Image Img = compileTLOrDie(Source, CG);

  Monitor Mon(Img.lowPc(), Img.highPc());
  VMOptions VO;
  VO.CyclesPerTick = 100;
  VM Machine(Img, VO);
  Machine.setHooks(&Mon);
  cantFail(Machine.run());

  ProfileReport R =
      cantFail(analyzeImageProfile(Img, Mon.finish()));
  // hot gets sampled time but no recorded calls ("no arcs will be
  // recorded whose destinations are in these routines").
  EXPECT_GT(fn(R, "hot").SelfTime, 0.0);
  EXPECT_EQ(fn(R, "hot").Calls, 0u);
  // Its time stays put: main inherits nothing from it.
  EXPECT_NEAR(fn(R, "main").ChildTime, 0.0, 1e-9);
}

TEST(IntegrationTest, DeterministicReports) {
  const char *Source = R"(
    fn a(n) { if (n < 1) { return 0; } return b(n - 1) + 1; }
    fn b(n) { if (n < 1) { return 0; } return a(n - 1) + 2; }
    fn main() { return a(40); }
  )";
  PipelineResult P1 = runPipeline(Source);
  PipelineResult P2 = runPipeline(Source);
  EXPECT_EQ(printFlatProfile(P1.Report), printFlatProfile(P2.Report));
  EXPECT_EQ(printCallGraph(P1.Report), printCallGraph(P2.Report));
}

TEST(IntegrationTest, ProfBaselineAgreesOnFlatFacts) {
  PipelineResult P = runPipeline(R"(
    fn leaf(n) { var i = 0; var a = 0;
      while (i < n) { a = a + i; i = i + 1; } return a; }
    fn main() {
      var acc = 0;
      var i = 0;
      while (i < 25) { acc = acc + leaf(200); i = i + 1; }
      return acc;
    }
  )");
  ProfReport Prof = analyzeProf(SymbolTable::fromImage(P.Img), P.Data);
  // prof and gprof agree on self time and call counts...
  const ProfEntry *ProfLeaf = nullptr;
  for (const ProfEntry &E : Prof.Entries)
    if (E.Name == "leaf")
      ProfLeaf = &E;
  ASSERT_NE(ProfLeaf, nullptr);
  EXPECT_NEAR(ProfLeaf->SelfTime, fn(P.Report, "leaf").SelfTime, 1e-9);
  EXPECT_EQ(ProfLeaf->Calls, fn(P.Report, "leaf").totalCalls());
  // ...but only gprof attributes the leaf's time to main.
  EXPECT_GT(fn(P.Report, "main").ChildTime, 0.0);
}

TEST(IntegrationTest, ArcDeletionThroughFullPipeline) {
  AnalyzerOptions Opts;
  Opts.DeleteArcs = {{"retry", "submit"}};
  PipelineResult P = runPipeline(R"(
    fn submit(n) {
      if (n > 0 && n % 7 == 0) { return retry(n); }
      return n * 2;
    }
    fn retry(n) { return submit(n - 1); }
    fn main() {
      var acc = 0;
      var i = 0;
      while (i < 60) { acc = acc + submit(i); i = i + 1; }
      return acc;
    }
  )",
                                 Opts);
  EXPECT_TRUE(P.Report.Cycles.empty());
  ASSERT_EQ(P.Report.RemovedArcs.size(), 1u);

  // Without deletion the same program has a cycle.
  PipelineResult Q = runPipeline(R"(
    fn submit(n) {
      if (n > 0 && n % 7 == 0) { return retry(n); }
      return n * 2;
    }
    fn retry(n) { return submit(n - 1); }
    fn main() {
      var acc = 0;
      var i = 0;
      while (i < 60) { acc = acc + submit(i); i = i + 1; }
      return acc;
    }
  )");
  EXPECT_EQ(Q.Report.Cycles.size(), 1u);
}

TEST(IntegrationTest, StaticArcsThroughFullPipeline) {
  AnalyzerOptions Opts;
  Opts.UseStaticArcs = true;
  PipelineResult P = runPipeline(R"(
    fn rare() { return 99; }
    fn common() { return 1; }
    fn pick(mode) {
      if (mode == 1) { return rare(); }
      return common();
    }
    fn main() {
      var acc = 0;
      var i = 0;
      while (i < 20) { acc = acc + pick(0); i = i + 1; }
      return acc;
    }
  )",
                                 Opts);
  // rare was never executed, yet the arc pick -> rare exists statically.
  uint32_t Pick = P.Report.findFunction("pick");
  uint32_t Rare = P.Report.findFunction("rare");
  bool Found = false;
  for (const ReportArc &A : P.Report.Arcs)
    if (A.Parent == Pick && A.Child == Rare) {
      Found = true;
      EXPECT_TRUE(A.Static);
      EXPECT_EQ(A.Count, 0u);
    }
  EXPECT_TRUE(Found);
  // rare shows in the graph listing despite zero calls.
  EXPECT_NE(fn(P.Report, "rare").ListingIndex, 0u);
}

TEST(IntegrationTest, SpontaneousMainIsReported) {
  PipelineResult P = runPipeline("fn main() { var i = 0; "
                                 "while (i < 2000) { i = i + 1; } "
                                 "return i; }");
  EXPECT_EQ(fn(P.Report, "main").SpontaneousCalls, 1u);
  std::string Listing = printCallGraph(P.Report);
  EXPECT_NE(Listing.find("<spontaneous>"), std::string::npos);
}
