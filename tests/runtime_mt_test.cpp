//===- tests/runtime_mt_test.cpp - Thread-aware runtime stress tests ------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Oracle-checked concurrent stress tests for the thread-aware monitor
/// (docs/RUNTIME_MT.md).  N threads replay disjoint and overlapping
/// (call, tick) streams against their per-thread recorders; the merged
/// snapshot must serialize byte-identical to a single-thread oracle fed
/// the union sequence, for every ArcRecorder implementation.  Also covers
/// the per-thread moncontrol semantics (control/reset/extract fan-out),
/// the deterministic per-thread stats fold, and overflow propagation.
///
/// The whole file is written to be TSan-clean: threads are joined before
/// every snapshot, so the only intentionally-concurrent state is the
/// registry and the per-thread tables themselves (the gprof_mt_smoke
/// target runs this under GPROF_SANITIZE=thread).
///
//===----------------------------------------------------------------------===//

#include "gmon/GmonFile.h"
#include "runtime/ArcTable.h"
#include "runtime/Monitor.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

using namespace gprof;

namespace {

constexpr Address LowPc = 0x1000;
constexpr Address HighPc = 0x2000;

/// One profiling event: an arc traversal or a clock tick.
struct Event {
  bool IsCall;
  Address A; ///< FromPc for calls, sampled PC for ticks.
  Address B; ///< SelfPc for calls, unused for ticks.
};

/// A reproducible stream of mostly-call events over [Lo, Hi).
std::vector<Event> makeStream(uint64_t Seed, size_t Count, Address Lo,
                              Address Hi) {
  SplitMix64 Rng(Seed);
  std::vector<Event> Stream;
  Stream.reserve(Count);
  for (size_t I = 0; I != Count; ++I) {
    if (Rng.nextBool(0.25)) {
      Stream.push_back({false, Lo + Rng.nextBelow(Hi - Lo), 0});
    } else {
      // A handful of callees so BSD chains and move-to-front engage.
      Address From = Lo + Rng.nextBelow(Hi - Lo);
      Address Self = Lo + Rng.nextBelow(64) * ((Hi - Lo) / 64);
      Stream.push_back({true, From, Self});
    }
  }
  return Stream;
}

void replay(Monitor &Mon, const std::vector<Event> &Stream) {
  for (const Event &E : Stream) {
    if (E.IsCall)
      Mon.onCall(E.A, E.B);
    else
      Mon.onTick(E.A);
  }
}

/// Splits \p Stream round-robin into \p K subsequences (order preserved
/// within each).
std::vector<std::vector<Event>> split(const std::vector<Event> &Stream,
                                      unsigned K) {
  std::vector<std::vector<Event>> Parts(K);
  for (size_t I = 0; I != Stream.size(); ++I)
    Parts[I % K].push_back(Stream[I]);
  return Parts;
}

/// Replays each part on its own thread against the shared \p Mon and
/// joins them all.
void replayThreaded(Monitor &Mon,
                    const std::vector<std::vector<Event>> &Parts) {
  std::vector<std::thread> Workers;
  Workers.reserve(Parts.size());
  for (const auto &Part : Parts)
    Workers.emplace_back([&Mon, &Part] { replay(Mon, Part); });
  for (std::thread &W : Workers)
    W.join();
}

std::vector<uint8_t> snapshotBytes(const Monitor &Mon) {
  return writeGmon(Mon.extract());
}

MonitorOptions optsFor(ArcTableKind Kind) {
  MonitorOptions MO;
  MO.TableKind = Kind;
  return MO;
}

const char *kindName(ArcTableKind Kind) {
  switch (Kind) {
  case ArcTableKind::Bsd:
    return "bsd";
  case ArcTableKind::OpenAddressing:
    return "open";
  case ArcTableKind::StdMap:
    return "map";
  }
  return "?";
}

} // namespace

//===----------------------------------------------------------------------===//
// Byte-identical merge vs the single-thread oracle
//===----------------------------------------------------------------------===//

class MtMergeTest : public testing::TestWithParam<ArcTableKind> {};

TEST_P(MtMergeTest, OverlappingStreamsMergeByteIdentical) {
  // All threads draw from the same sites, so per-thread tables hold
  // overlapping arcs that must coalesce in the merge.
  std::vector<Event> Union = makeStream(7, 40000, LowPc, HighPc);
  Monitor Oracle(LowPc, HighPc, optsFor(ArcTableKind::StdMap));
  replay(Oracle, Union);
  std::vector<uint8_t> Expected = snapshotBytes(Oracle);

  for (unsigned K : {1u, 2u, 4u, 8u}) {
    Monitor Mon(LowPc, HighPc, optsFor(GetParam()));
    replayThreaded(Mon, split(Union, K));
    EXPECT_EQ(snapshotBytes(Mon), Expected)
        << kindName(GetParam()) << " with " << K << " threads";
    EXPECT_EQ(Mon.registeredThreads(), K);
  }
}

TEST_P(MtMergeTest, DisjointStreamsMergeByteIdentical) {
  // Each thread owns a disjoint slice of the address space; the union
  // sequence interleaves them round-robin.
  constexpr unsigned K = 4;
  std::vector<std::vector<Event>> Parts;
  for (unsigned T = 0; T != K; ++T) {
    Address Lo = LowPc + T * 0x400;
    Parts.push_back(makeStream(100 + T, 10000, Lo, Lo + 0x400));
  }
  std::vector<Event> Union;
  for (size_t I = 0; I != 10000; ++I)
    for (unsigned T = 0; T != K; ++T)
      Union.push_back(Parts[T][I]);

  Monitor Oracle(LowPc, HighPc, optsFor(ArcTableKind::StdMap));
  replay(Oracle, Union);

  Monitor Mon(LowPc, HighPc, optsFor(GetParam()));
  replayThreaded(Mon, Parts);
  EXPECT_EQ(snapshotBytes(Mon), snapshotBytes(Oracle));
}

TEST_P(MtMergeTest, HighContentionSmallKeySet) {
  // 8 threads hammer 16 arcs: maximal overlap, the worst case for any
  // accidentally-shared recorder state.  Total counts must be exact.
  constexpr unsigned K = 8;
  constexpr size_t PerThread = 25000;
  std::vector<std::vector<Event>> Parts(K);
  for (unsigned T = 0; T != K; ++T) {
    SplitMix64 Rng(T);
    for (size_t I = 0; I != PerThread; ++I) {
      Address From = LowPc + Rng.nextBelow(4) * 0x10;
      Address Self = LowPc + Rng.nextBelow(4) * 0x100;
      Parts[T].push_back({true, From, Self});
    }
  }
  Monitor Mon(LowPc, HighPc, optsFor(GetParam()));
  replayThreaded(Mon, Parts);

  ProfileData Data = Mon.extract();
  uint64_t Total = 0;
  for (const ArcRecord &R : Data.Arcs)
    Total += R.Count;
  EXPECT_EQ(Total, static_cast<uint64_t>(K) * PerThread);
  EXPECT_LE(Data.Arcs.size(), 16u);
  EXPECT_EQ(Mon.arcTableStats().Records,
            static_cast<uint64_t>(K) * PerThread);
}

INSTANTIATE_TEST_SUITE_P(AllRecorders, MtMergeTest,
                         testing::Values(ArcTableKind::Bsd,
                                         ArcTableKind::OpenAddressing,
                                         ArcTableKind::StdMap),
                         [](const auto &Info) {
                           return std::string(kindName(Info.param));
                         });

TEST(MtMergeRawOracleTest, MatchesStdMapArcTableFedUnionSequence) {
  // The satellite's literal oracle: a bare StdMapArcTable fed the union
  // sequence, assembled into a canonical ProfileData by hand, must
  // serialize to the same bytes as the threaded monitor's snapshot.
  std::vector<Event> Union = makeStream(42, 30000, LowPc, HighPc);

  StdMapArcTable OracleTable;
  Histogram OracleHist(LowPc, HighPc, 1);
  uint64_t Ticks = 0;
  for (const Event &E : Union) {
    if (E.IsCall) {
      OracleTable.record(E.A, E.B);
    } else {
      OracleHist.recordPc(E.A);
      ++Ticks;
    }
  }
  ProfileData Expected;
  Expected.Hist = OracleHist;
  for (const ArcRecord &R : OracleTable.snapshot())
    Expected.addArc(R.FromPc, R.SelfPc, R.Count);
  Expected.canonicalizeArcs();
  ASSERT_GT(Ticks, 0u);

  for (ArcTableKind Kind : {ArcTableKind::Bsd, ArcTableKind::OpenAddressing,
                            ArcTableKind::StdMap}) {
    Monitor Mon(LowPc, HighPc, optsFor(Kind));
    replayThreaded(Mon, split(Union, 6));
    EXPECT_EQ(writeGmon(Mon.extract()), writeGmon(Expected))
        << kindName(Kind);
  }
}

//===----------------------------------------------------------------------===//
// Per-thread moncontrol semantics
//===----------------------------------------------------------------------===//

TEST(MtControlTest, ControlOffSilencesEveryThread) {
  std::vector<Event> Stream = makeStream(9, 8000, LowPc, HighPc);
  Monitor Mon(LowPc, HighPc);
  replayThreaded(Mon, split(Stream, 4));
  std::vector<uint8_t> Before = snapshotBytes(Mon);

  Mon.control(false);
  replayThreaded(Mon, split(Stream, 4));
  EXPECT_EQ(snapshotBytes(Mon), Before)
      << "events recorded while profiling was off";

  Mon.control(true);
  replayThreaded(Mon, split(Stream, 4));
  ProfileData Doubled = Mon.extract();
  uint64_t Total = 0;
  for (const ArcRecord &R : Doubled.Arcs)
    Total += R.Count;
  ProfileData First = cantFail(readGmon(Before));
  uint64_t FirstTotal = 0;
  for (const ArcRecord &R : First.Arcs)
    FirstTotal += R.Count;
  EXPECT_EQ(Total, 2 * FirstTotal);
}

TEST(MtControlTest, ResetClearsEveryRegisteredThread) {
  std::vector<Event> Stream = makeStream(11, 6000, LowPc, HighPc);
  Monitor Mon(LowPc, HighPc);
  replayThreaded(Mon, split(Stream, 4));
  ASSERT_EQ(Mon.registeredThreads(), 4u);
  ASSERT_FALSE(Mon.extract().Arcs.empty());

  Mon.reset();
  ProfileData Cleared = Mon.extract();
  EXPECT_TRUE(Cleared.Arcs.empty());
  EXPECT_EQ(Cleared.Hist.totalSamples(), 0u);
  // Threads stay registered (their recorders are reset, not destroyed) so
  // live thread-local caches never dangle.
  EXPECT_EQ(Mon.registeredThreads(), 4u);
  EXPECT_EQ(Mon.arcTableStats().Records, 0u);
}

TEST(MtControlTest, ExtractDoesNotDisturbThreadedCollection) {
  std::vector<Event> Stream = makeStream(13, 6000, LowPc, HighPc);
  Monitor Mon(LowPc, HighPc);
  replayThreaded(Mon, split(Stream, 3));
  ProfileData First = Mon.extract();
  replayThreaded(Mon, split(Stream, 3));
  ProfileData Second = Mon.extract();
  uint64_t FirstTotal = 0, SecondTotal = 0;
  for (const ArcRecord &R : First.Arcs)
    FirstTotal += R.Count;
  for (const ArcRecord &R : Second.Arcs)
    SecondTotal += R.Count;
  ASSERT_GT(FirstTotal, 0u);
  EXPECT_EQ(SecondTotal, 2 * FirstTotal);
}

//===----------------------------------------------------------------------===//
// Registry behaviour and stats aggregation
//===----------------------------------------------------------------------===//

TEST(MtRegistryTest, SameThreadReusesItsState) {
  Monitor Mon(LowPc, HighPc);
  Mon.onCall(LowPc + 1, LowPc + 2);
  Mon.onCall(LowPc + 1, LowPc + 2);
  EXPECT_EQ(Mon.registeredThreads(), 1u);
  EXPECT_EQ(Mon.arcTableStats().Records, 2u);
}

TEST(MtRegistryTest, AlternatingMonitorsOnOneThreadStayIndependent) {
  // Alternating between two monitors thrashes the thread-local cache
  // (each switch takes the slow registration path); the data must still
  // land in the right monitor.
  Monitor A(LowPc, HighPc);
  Monitor B(LowPc, HighPc);
  for (int I = 0; I != 100; ++I) {
    A.onCall(LowPc + 1, LowPc + 2);
    B.onCall(LowPc + 3, LowPc + 4);
    B.onCall(LowPc + 3, LowPc + 4);
  }
  EXPECT_EQ(A.arcTableStats().Records, 100u);
  EXPECT_EQ(B.arcTableStats().Records, 200u);
  EXPECT_EQ(A.registeredThreads(), 1u);
  EXPECT_EQ(B.registeredThreads(), 1u);
}

TEST(MtRegistryTest, PerThreadStatsSumToAggregate) {
  std::vector<Event> Stream = makeStream(17, 20000, LowPc, HighPc);
  Monitor Mon(LowPc, HighPc);
  replayThreaded(Mon, split(Stream, 5));

  std::vector<ArcTableStats> Per = Mon.perThreadArcStats();
  ASSERT_EQ(Per.size(), 5u);
  uint64_t Records = 0, NewArcs = 0, Probes = 0;
  for (const ArcTableStats &S : Per) {
    Records += S.Records;
    NewArcs += S.NewArcs;
    Probes += S.ChainProbes;
  }
  ArcTableStats Sum = Mon.arcTableStats();
  EXPECT_EQ(Sum.Records, Records);
  EXPECT_EQ(Sum.NewArcs, NewArcs);
  EXPECT_EQ(Sum.ChainProbes, Probes);

  uint64_t Calls = 0;
  for (const Event &E : Stream)
    Calls += E.IsCall;
  EXPECT_EQ(Sum.Records, Calls);
}

TEST(MtRegistryTest, OverflowOnOneThreadPropagates) {
  MonitorOptions MO;
  MO.TosLimit = 4; // Per-thread budget.
  Monitor Mon(LowPc, HighPc, MO);

  std::vector<std::vector<Event>> Parts(3);
  // Thread 0 exhausts its table; the others stay tiny.
  for (Address I = 0; I != 100; ++I)
    Parts[0].push_back({true, LowPc + I, LowPc + I * 8});
  Parts[1].push_back({true, LowPc + 1, LowPc + 2});
  Parts[2].push_back({true, LowPc + 3, LowPc + 4});
  replayThreaded(Mon, Parts);

  EXPECT_TRUE(Mon.arcTableOverflowed());
  EXPECT_TRUE(Mon.extract().ArcTableOverflowed);
  EXPECT_GT(Mon.arcTableStats().Dropped, 0u);
}

TEST(MtRegistryTest, HistogramTicksSumAcrossThreads) {
  constexpr unsigned K = 4;
  constexpr size_t TicksPerThread = 5000;
  std::vector<std::vector<Event>> Parts(K);
  for (unsigned T = 0; T != K; ++T) {
    SplitMix64 Rng(T + 50);
    for (size_t I = 0; I != TicksPerThread; ++I)
      Parts[T].push_back({false, LowPc + Rng.nextBelow(HighPc - LowPc), 0});
  }
  Monitor Mon(LowPc, HighPc);
  replayThreaded(Mon, Parts);
  EXPECT_EQ(Mon.extract().Hist.totalSamples(),
            static_cast<uint64_t>(K) * TicksPerThread);
}
