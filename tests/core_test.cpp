//===- tests/core_test.cpp - Unit & property tests for the analyzer -------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "core/Analyzer.h"
#include "core/FlatPrinter.h"
#include "core/GraphPrinter.h"
#include "graph/Generators.h"
#include "support/Format.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

using namespace gprof;

namespace {

/// Builder for synthetic profiles: routines are laid out 100 addresses
/// apart, each 100 addresses long; self times are expressed in seconds and
/// realized as histogram samples at 60 ticks/second.
class ProfileFixture {
public:
  static constexpr Address Base = 0x1000;
  static constexpr uint64_t FuncSize = 100;
  static constexpr uint64_t Hz = 60;

  /// Adds a routine and returns its index.
  uint32_t addFunction(const std::string &Name) {
    uint32_t I = static_cast<uint32_t>(Names.size());
    Names.push_back(Name);
    return I;
  }

  Address entryOf(uint32_t Fn) const { return Base + Fn * FuncSize; }
  /// A distinct call-site address inside \p Fn.
  Address siteOf(uint32_t Fn, uint32_t Site = 0) const {
    return entryOf(Fn) + 10 + Site;
  }

  /// Records \p Count calls from a call site in \p From to \p To.
  void addCall(uint32_t From, uint32_t To, uint64_t Count,
               uint32_t Site = 0) {
    Data.addArc(siteOf(From, Site), entryOf(To), Count);
  }

  /// Records \p Count spontaneous activations of \p Fn (caller outside
  /// the text range).
  void addSpontaneous(uint32_t Fn, uint64_t Count = 1) {
    Data.addArc(0, entryOf(Fn), Count);
  }

  /// Gives \p Fn exactly \p Seconds of self time.
  void setSelfSeconds(uint32_t Fn, double Seconds) {
    SelfSeconds[Fn] = Seconds;
  }

  /// Builds the analyzer inputs.
  std::pair<SymbolTable, ProfileData> build() {
    SymbolTable Syms;
    for (uint32_t I = 0; I != Names.size(); ++I)
      Syms.addSymbol(Names[I], entryOf(I), FuncSize);
    cantFail(Syms.finalize());

    Data.TicksPerSecond = Hz;
    Histogram H(Base, Base + Names.size() * FuncSize, 1);
    for (const auto &[Fn, Seconds] : SelfSeconds) {
      auto Samples = static_cast<uint64_t>(std::llround(Seconds * Hz));
      for (uint64_t S = 0; S != Samples; ++S)
        H.recordPc(entryOf(Fn) + 50); // One address inside the routine.
    }
    Data.Hist = std::move(H);
    return {std::move(Syms), Data};
  }

  ProfileReport analyze(AnalyzerOptions Opts = {}) {
    auto [Syms, D] = build();
    Analyzer A(std::move(Syms), std::move(Opts));
    auto R = A.analyze(D);
    EXPECT_TRUE(static_cast<bool>(R)) << R.message();
    return R.takeValue();
  }

  std::vector<std::string> Names;
  ProfileData Data;
  std::map<uint32_t, double> SelfSeconds;
};

/// Finds the report arc parent->child, asserting it exists.
const ReportArc &findArc(const ProfileReport &R, const std::string &Parent,
                         const std::string &Child) {
  uint32_t P = R.findFunction(Parent);
  uint32_t C = R.findFunction(Child);
  EXPECT_NE(P, ~0u);
  EXPECT_NE(C, ~0u);
  for (const ReportArc &A : R.Arcs)
    if (A.Parent == P && A.Child == C)
      return A;
  ADD_FAILURE() << "no arc " << Parent << " -> " << Child;
  static ReportArc Dummy;
  return Dummy;
}

const FunctionEntry &fn(const ProfileReport &R, const std::string &Name) {
  uint32_t I = R.findFunction(Name);
  EXPECT_NE(I, ~0u) << Name;
  return R.Functions[I];
}

} // namespace

//===----------------------------------------------------------------------===//
// SymbolTable
//===----------------------------------------------------------------------===//

TEST(SymbolTableTest, LookupSemantics) {
  SymbolTable T;
  T.addSymbol("b", 200, 50);
  T.addSymbol("a", 100, 50);
  cantFail(T.finalize());
  EXPECT_EQ(T.symbol(0).Name, "a"); // Sorted by address.
  EXPECT_EQ(T.findContaining(100), 0u);
  EXPECT_EQ(T.findContaining(149), 0u);
  EXPECT_EQ(T.findContaining(150), NoSymbol); // Gap between symbols.
  EXPECT_EQ(T.findContaining(99), NoSymbol);
  EXPECT_EQ(T.findContaining(249), 1u);
  EXPECT_EQ(T.findContaining(250), NoSymbol);
  EXPECT_EQ(T.findAt(200), 1u);
  EXPECT_EQ(T.findAt(201), NoSymbol);
  EXPECT_EQ(T.findByName("b"), 1u);
  EXPECT_EQ(T.findByName("zz"), NoSymbol);
  EXPECT_EQ(T.lowPc(), 100u);
  EXPECT_EQ(T.highPc(), 250u);
}

TEST(SymbolTableTest, OverlapRejected) {
  SymbolTable T;
  T.addSymbol("a", 100, 60);
  T.addSymbol("b", 150, 60);
  Error E = T.finalize();
  EXPECT_TRUE(static_cast<bool>(E));
}

//===----------------------------------------------------------------------===//
// Self-time assignment
//===----------------------------------------------------------------------===//

TEST(AnalyzerTest, SelfTimesFromHistogram) {
  ProfileFixture F;
  uint32_t Main = F.addFunction("main");
  uint32_t Hot = F.addFunction("hot");
  F.addSpontaneous(Main);
  F.addCall(Main, Hot, 3);
  F.setSelfSeconds(Main, 0.5);
  F.setSelfSeconds(Hot, 2.0);
  ProfileReport R = F.analyze();
  EXPECT_NEAR(fn(R, "main").SelfTime, 0.5, 1e-9);
  EXPECT_NEAR(fn(R, "hot").SelfTime, 2.0, 1e-9);
  EXPECT_NEAR(R.TotalTime, 2.5, 1e-9);
  EXPECT_NEAR(R.UnattributedTime, 0.0, 1e-9);
}

TEST(AnalyzerTest, StraddlingBucketProrated) {
  // One bucket of 10 addresses covering the boundary between a and b:
  // 40% of the bucket overlaps a, 60% overlaps b.
  SymbolTable Syms;
  Syms.addSymbol("a", 100, 24);
  Syms.addSymbol("b", 124, 26);
  cantFail(Syms.finalize());

  ProfileData Data;
  Data.TicksPerSecond = 60;
  Histogram H(100, 150, 10);
  // 60 samples into the bucket [120, 130): 4 addresses in a, 6 in b.
  for (int I = 0; I != 60; ++I)
    H.recordPc(125);
  Data.Hist = std::move(H);

  Analyzer A(std::move(Syms));
  ProfileReport R = cantFail(A.analyze(Data));
  EXPECT_NEAR(fn(R, "a").SelfTime, 0.4, 1e-9);
  EXPECT_NEAR(fn(R, "b").SelfTime, 0.6, 1e-9);
}

TEST(AnalyzerTest, SamplesOutsideSymbolsUnattributed) {
  SymbolTable Syms;
  Syms.addSymbol("a", 100, 10);
  cantFail(Syms.finalize());
  ProfileData Data;
  Data.TicksPerSecond = 60;
  Histogram H(0, 1000, 1);
  for (int I = 0; I != 30; ++I)
    H.recordPc(500); // Nowhere near 'a'.
  for (int I = 0; I != 30; ++I)
    H.recordPc(105);
  Data.Hist = std::move(H);
  Analyzer A(std::move(Syms));
  ProfileReport R = cantFail(A.analyze(Data));
  EXPECT_NEAR(R.UnattributedTime, 0.5, 1e-9);
  EXPECT_NEAR(R.TotalTime, 0.5, 1e-9);
}

//===----------------------------------------------------------------------===//
// Call counts
//===----------------------------------------------------------------------===//

TEST(AnalyzerTest, CallCountsSumIncomingArcs) {
  ProfileFixture F;
  uint32_t Main = F.addFunction("main");
  uint32_t A = F.addFunction("a");
  uint32_t B = F.addFunction("b");
  F.addSpontaneous(Main);
  F.addCall(Main, B, 4);
  F.addCall(A, B, 6);
  F.addCall(Main, A, 1);
  ProfileReport R = F.analyze();
  EXPECT_EQ(fn(R, "b").Calls, 10u); // "summing the counts on arcs" §3.1.
  EXPECT_EQ(fn(R, "a").Calls, 1u);
  EXPECT_EQ(fn(R, "main").Calls, 1u);
  EXPECT_EQ(fn(R, "main").SpontaneousCalls, 1u);
}

TEST(AnalyzerTest, SelfCallsSeparated) {
  ProfileFixture F;
  uint32_t Main = F.addFunction("main");
  uint32_t Rec = F.addFunction("rec");
  F.addSpontaneous(Main);
  F.addCall(Main, Rec, 10);
  F.addCall(Rec, Rec, 4);
  ProfileReport R = F.analyze();
  EXPECT_EQ(fn(R, "rec").Calls, 10u);
  EXPECT_EQ(fn(R, "rec").SelfCalls, 4u);
  // The self arc is listed but flagged.
  const ReportArc &Self = findArc(R, "rec", "rec");
  EXPECT_TRUE(Self.SelfArc);
  EXPECT_EQ(Self.Count, 4u);
  EXPECT_EQ(Self.PropSelf, 0.0);
}

TEST(AnalyzerTest, MultipleCallSitesMerge) {
  ProfileFixture F;
  uint32_t Main = F.addFunction("main");
  uint32_t Leaf = F.addFunction("leaf");
  F.addSpontaneous(Main);
  F.addCall(Main, Leaf, 3, /*Site=*/0);
  F.addCall(Main, Leaf, 5, /*Site=*/7);
  ProfileReport R = F.analyze();
  EXPECT_EQ(fn(R, "leaf").Calls, 8u);
  EXPECT_EQ(findArc(R, "main", "leaf").Count, 8u);
}

//===----------------------------------------------------------------------===//
// Time propagation
//===----------------------------------------------------------------------===//

TEST(AnalyzerTest, ChainPropagation) {
  ProfileFixture F;
  uint32_t Main = F.addFunction("main");
  uint32_t Mid = F.addFunction("mid");
  uint32_t Leaf = F.addFunction("leaf");
  F.addSpontaneous(Main);
  F.addCall(Main, Mid, 2);
  F.addCall(Mid, Leaf, 8);
  F.setSelfSeconds(Main, 0.1);
  F.setSelfSeconds(Mid, 0.4);
  F.setSelfSeconds(Leaf, 1.5);
  ProfileReport R = F.analyze();

  EXPECT_NEAR(fn(R, "leaf").ChildTime, 0.0, 1e-9);
  EXPECT_NEAR(fn(R, "mid").ChildTime, 1.5, 1e-9);
  EXPECT_NEAR(fn(R, "main").ChildTime, 1.9, 1e-9);
  EXPECT_NEAR(fn(R, "main").totalTime(), 2.0, 1e-9);

  const ReportArc &MainMid = findArc(R, "main", "mid");
  EXPECT_NEAR(MainMid.PropSelf, 0.4, 1e-9);
  EXPECT_NEAR(MainMid.PropChild, 1.5, 1e-9);
}

TEST(AnalyzerTest, ProportionalSplitBetweenParents) {
  // The Figure 4 ratio: 4/10 to one caller, 6/10 to the other.
  ProfileFixture F;
  uint32_t C1 = F.addFunction("caller1");
  uint32_t C2 = F.addFunction("caller2");
  uint32_t E = F.addFunction("example");
  F.addSpontaneous(C1);
  F.addSpontaneous(C2);
  F.addCall(C1, E, 4);
  F.addCall(C2, E, 6);
  F.setSelfSeconds(E, 0.5);
  ProfileReport R = F.analyze();

  const ReportArc &A1 = findArc(R, "caller1", "example");
  const ReportArc &A2 = findArc(R, "caller2", "example");
  EXPECT_NEAR(A1.PropSelf, 0.2, 1e-9);
  EXPECT_NEAR(A2.PropSelf, 0.3, 1e-9);
  EXPECT_NEAR(fn(R, "caller1").ChildTime, 0.2, 1e-9);
  EXPECT_NEAR(fn(R, "caller2").ChildTime, 0.3, 1e-9);
}

TEST(AnalyzerTest, SpontaneousFractionStaysPut) {
  // Half of leaf's calls come from nowhere: only the known caller's half
  // propagates.
  ProfileFixture F;
  uint32_t Main = F.addFunction("main");
  uint32_t Leaf = F.addFunction("leaf");
  F.addSpontaneous(Main);
  F.addCall(Main, Leaf, 5);
  F.addSpontaneous(Leaf, 5);
  F.setSelfSeconds(Leaf, 1.0);
  ProfileReport R = F.analyze();
  EXPECT_NEAR(fn(R, "main").ChildTime, 0.5, 1e-9);
  EXPECT_EQ(fn(R, "leaf").Calls, 10u);
}

TEST(AnalyzerTest, NeverCalledTimeDoesNotPropagate) {
  // A routine with samples but no incoming arcs (compiled without
  // profiling): its time stays with it.
  ProfileFixture F;
  uint32_t Main = F.addFunction("main");
  uint32_t Mystery = F.addFunction("mystery");
  F.addSpontaneous(Main);
  F.setSelfSeconds(Mystery, 1.0);
  ProfileReport R = F.analyze();
  EXPECT_NEAR(fn(R, "mystery").SelfTime, 1.0, 1e-9);
  EXPECT_NEAR(fn(R, "main").ChildTime, 0.0, 1e-9);
  (void)Main;
  (void)Mystery;
}

//===----------------------------------------------------------------------===//
// Property test: the recurrence T_r = S_r + sum T_e * C^r_e / C_e holds
// exactly on random DAG profiles.
//===----------------------------------------------------------------------===//

class PropagationPropertyTest : public testing::TestWithParam<uint64_t> {};

TEST_P(PropagationPropertyTest, RecurrenceHoldsOnRandomDags) {
  CallGraph G = makeRandomDag(25, 60, 20, GetParam());
  SplitMix64 Rng(GetParam() * 7 + 1);

  ProfileFixture F;
  for (NodeId N = 0; N != G.numNodes(); ++N) {
    F.addFunction(G.nodeName(N));
    F.setSelfSeconds(static_cast<uint32_t>(N),
                     static_cast<double>(Rng.nextInRange(0, 120)) / 60.0);
  }
  for (ArcId A = 0; A != G.numArcs(); ++A) {
    const Arc &E = G.arc(A);
    F.addCall(E.From, E.To, E.Count);
  }
  // Roots (no incoming arcs) activate spontaneously.
  for (NodeId N = 0; N != G.numNodes(); ++N)
    if (G.inArcs(N).empty())
      F.addSpontaneous(N);

  ProfileReport R = F.analyze();

  // Verify the recurrence at every node against an independent
  // memoized evaluation.
  std::vector<double> Expected(G.numNodes(), -1.0);
  auto Eval = [&](auto &&Self, NodeId N) -> double {
    if (Expected[N] >= 0)
      return Expected[N];
    double T = R.Functions[N].SelfTime;
    for (ArcId A : G.outArcs(N)) {
      const Arc &E = G.arc(A);
      uint64_t CalleeCalls = R.Functions[E.To].Calls;
      EXPECT_NE(CalleeCalls, 0u);
      if (CalleeCalls != 0)
        T += Self(Self, E.To) * static_cast<double>(E.Count) /
             static_cast<double>(CalleeCalls);
    }
    Expected[N] = T;
    return T;
  };
  for (NodeId N = 0; N != G.numNodes(); ++N) {
    Eval(Eval, N);
    EXPECT_NEAR(R.Functions[N].totalTime(), Expected[N], 1e-6)
        << G.nodeName(N);
  }

  // Conservation: all time flows to the roots.
  double RootTotal = 0.0;
  for (NodeId N = 0; N != G.numNodes(); ++N)
    if (G.inArcs(N).empty())
      RootTotal += R.Functions[N].totalTime();
  EXPECT_NEAR(RootTotal, R.TotalTime, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropagationPropertyTest,
                         testing::Range<uint64_t>(0, 10));

//===----------------------------------------------------------------------===//
// Cycles
//===----------------------------------------------------------------------===//

TEST(AnalyzerTest, MutualRecursionCollapses) {
  ProfileFixture F;
  uint32_t Main = F.addFunction("main");
  uint32_t B = F.addFunction("b");
  uint32_t C = F.addFunction("c");
  uint32_t D = F.addFunction("d");
  F.addSpontaneous(Main);
  F.addCall(Main, B, 10);   // External calls into the cycle.
  F.addCall(B, C, 30);      // Intra-cycle.
  F.addCall(C, B, 29);      // Intra-cycle (closes the cycle).
  F.addCall(C, D, 8);       // Cycle calls out.
  F.setSelfSeconds(B, 1.0);
  F.setSelfSeconds(C, 2.0);
  F.setSelfSeconds(D, 0.6);
  ProfileReport R = F.analyze();

  ASSERT_EQ(R.Cycles.size(), 1u);
  const CycleEntry &Cycle = R.Cycles[0];
  EXPECT_EQ(Cycle.Members.size(), 2u);
  EXPECT_NEAR(Cycle.SelfTime, 3.0, 1e-9);
  EXPECT_EQ(Cycle.ExternalCalls, 10u);
  EXPECT_EQ(Cycle.InternalCalls, 59u);
  // d's whole time flows into the cycle (c is its only caller).
  EXPECT_NEAR(Cycle.ChildTime, 0.6, 1e-9);

  EXPECT_EQ(fn(R, "b").CycleNumber, 1u);
  EXPECT_EQ(fn(R, "c").CycleNumber, 1u);
  EXPECT_EQ(fn(R, "main").CycleNumber, 0u);

  // Intra-cycle arcs never propagate.
  EXPECT_TRUE(findArc(R, "b", "c").WithinCycle);
  EXPECT_EQ(findArc(R, "b", "c").PropSelf, 0.0);
  EXPECT_TRUE(findArc(R, "c", "b").WithinCycle);

  // main receives the whole cycle's self+descendant time (it is the only
  // external caller: 10/10).
  EXPECT_NEAR(fn(R, "main").ChildTime, 3.6, 1e-9);
  const ReportArc &IntoCycle = findArc(R, "main", "b");
  EXPECT_NEAR(IntoCycle.PropSelf, 3.0, 1e-9);
  EXPECT_NEAR(IntoCycle.PropChild, 0.6, 1e-9);
}

TEST(AnalyzerTest, CycleSharedBetweenTwoCallers) {
  // Two callers split a cycle's time by their call counts into it.
  ProfileFixture F;
  uint32_t P1 = F.addFunction("p1");
  uint32_t P2 = F.addFunction("p2");
  uint32_t X = F.addFunction("x");
  uint32_t Y = F.addFunction("y");
  F.addSpontaneous(P1);
  F.addSpontaneous(P2);
  F.addCall(P1, X, 20); // 20/40 of the cycle.
  F.addCall(P2, Y, 20); // 20/40 of the cycle.
  F.addCall(X, Y, 100);
  F.addCall(Y, X, 99);
  F.setSelfSeconds(X, 2.0);
  F.setSelfSeconds(Y, 4.0);
  ProfileReport R = F.analyze();
  ASSERT_EQ(R.Cycles.size(), 1u);
  EXPECT_EQ(R.Cycles[0].ExternalCalls, 40u);
  EXPECT_NEAR(fn(R, "p1").ChildTime, 3.0, 1e-9);
  EXPECT_NEAR(fn(R, "p2").ChildTime, 3.0, 1e-9);
}

TEST(AnalyzerTest, ThreeNodeCycleThroughTwoComponents) {
  // A larger cycle a->b->c->a plus an independent 2-cycle d<->e gives two
  // cycle entries with distinct numbers.
  ProfileFixture F;
  uint32_t Main = F.addFunction("main");
  uint32_t A = F.addFunction("a");
  uint32_t B = F.addFunction("b");
  uint32_t C = F.addFunction("c");
  uint32_t D = F.addFunction("d");
  uint32_t E = F.addFunction("e");
  F.addSpontaneous(Main);
  F.addCall(Main, A, 1);
  F.addCall(A, B, 5);
  F.addCall(B, C, 5);
  F.addCall(C, A, 4);
  F.addCall(Main, D, 1);
  F.addCall(D, E, 3);
  F.addCall(E, D, 2);
  ProfileReport R = F.analyze();
  ASSERT_EQ(R.Cycles.size(), 2u);
  EXPECT_NE(fn(R, "a").CycleNumber, 0u);
  EXPECT_EQ(fn(R, "a").CycleNumber, fn(R, "b").CycleNumber);
  EXPECT_EQ(fn(R, "a").CycleNumber, fn(R, "c").CycleNumber);
  EXPECT_NE(fn(R, "d").CycleNumber, 0u);
  EXPECT_EQ(fn(R, "d").CycleNumber, fn(R, "e").CycleNumber);
  EXPECT_NE(fn(R, "a").CycleNumber, fn(R, "d").CycleNumber);
}

//===----------------------------------------------------------------------===//
// Static arcs
//===----------------------------------------------------------------------===//

TEST(AnalyzerTest, StaticArcsAddedWithZeroCount) {
  ProfileFixture F;
  uint32_t Main = F.addFunction("main");
  uint32_t Used = F.addFunction("used");
  uint32_t Cold = F.addFunction("cold");
  F.addSpontaneous(Main);
  F.addCall(Main, Used, 5);
  F.setSelfSeconds(Used, 1.0);

  auto [Syms, Data] = F.build();
  AnalyzerOptions Opts;
  Opts.UseStaticArcs = true;
  Analyzer An(std::move(Syms), Opts);
  An.setStaticArcs({{F.siteOf(Main, 1), F.entryOf(Cold)},
                    {F.siteOf(Main, 0), F.entryOf(Used)}});
  ProfileReport R = cantFail(An.analyze(Data));

  const ReportArc &ColdArc = findArc(R, "main", "cold");
  EXPECT_TRUE(ColdArc.Static);
  EXPECT_EQ(ColdArc.Count, 0u);
  EXPECT_EQ(ColdArc.PropSelf, 0.0);
  // The dynamic arc keeps its count despite the duplicate static arc.
  EXPECT_EQ(findArc(R, "main", "used").Count, 5u);
  EXPECT_FALSE(findArc(R, "main", "used").Static);
  // cold is never called but referenced: it gets a listing slot.
  EXPECT_NE(fn(R, "cold").ListingIndex, 0u);
}

TEST(AnalyzerTest, StaticArcCompletesCycle) {
  // Dynamic: b -> c.  Static: c -> b.  The two must land in one cycle,
  // "since they may complete strongly connected components" (§4) —
  // keeping cycle membership stable across runs.
  ProfileFixture F;
  uint32_t Main = F.addFunction("main");
  uint32_t B = F.addFunction("b");
  uint32_t C = F.addFunction("c");
  F.addSpontaneous(Main);
  F.addCall(Main, B, 2);
  F.addCall(B, C, 3);
  F.setSelfSeconds(C, 1.0);

  auto [Syms, Data] = F.build();
  AnalyzerOptions Opts;
  Opts.UseStaticArcs = true;
  Analyzer An(std::move(Syms), Opts);
  An.setStaticArcs({{F.siteOf(C), F.entryOf(B)}});
  ProfileReport R = cantFail(An.analyze(Data));

  ASSERT_EQ(R.Cycles.size(), 1u);
  EXPECT_EQ(fn(R, "b").CycleNumber, 1u);
  EXPECT_EQ(fn(R, "c").CycleNumber, 1u);
  // All of the cycle's time still reaches main (sole external caller).
  EXPECT_NEAR(fn(R, "main").ChildTime, 1.0, 1e-9);
}

TEST(AnalyzerTest, WithoutStaticArcsNoCycle) {
  ProfileFixture F;
  uint32_t Main = F.addFunction("main");
  uint32_t B = F.addFunction("b");
  F.addFunction("c");
  F.addSpontaneous(Main);
  F.addCall(Main, B, 2);
  F.addCall(B, 2, 3);
  ProfileReport R = F.analyze();
  EXPECT_TRUE(R.Cycles.empty());
}

//===----------------------------------------------------------------------===//
// Arc deletion and cycle breaking
//===----------------------------------------------------------------------===//

TEST(AnalyzerTest, DeleteArcBreaksCycle) {
  ProfileFixture F;
  uint32_t Main = F.addFunction("main");
  uint32_t B = F.addFunction("b");
  uint32_t C = F.addFunction("c");
  F.addSpontaneous(Main);
  F.addCall(Main, B, 10);
  F.addCall(B, C, 1000);
  F.addCall(C, B, 2); // The low-count arc closing the cycle.
  F.setSelfSeconds(B, 1.0);
  F.setSelfSeconds(C, 3.0);

  // Without deletion: one cycle.
  EXPECT_EQ(F.analyze().Cycles.size(), 1u);

  // With -k c/b: no cycle, and c's time attributes cleanly through b.
  AnalyzerOptions Opts;
  Opts.DeleteArcs = {{"c", "b"}};
  ProfileReport R = F.analyze(Opts);
  EXPECT_TRUE(R.Cycles.empty());
  EXPECT_NEAR(fn(R, "b").ChildTime, 3.0, 1e-9);
  EXPECT_NEAR(fn(R, "main").ChildTime, 4.0, 1e-9);
  ASSERT_EQ(R.RemovedArcs.size(), 1u);
}

TEST(AnalyzerTest, DeleteUnknownArcFails) {
  ProfileFixture F;
  uint32_t Main = F.addFunction("main");
  F.addSpontaneous(Main);
  auto [Syms, Data] = F.build();
  AnalyzerOptions Opts;
  Opts.DeleteArcs = {{"main", "ghost"}};
  Analyzer A(std::move(Syms), Opts);
  auto R = A.analyze(Data);
  EXPECT_FALSE(static_cast<bool>(R));
  (void)R.takeError();
}

TEST(AnalyzerTest, AutoBreakHeuristicRemovesLowCountArcs) {
  ProfileFixture F;
  uint32_t Main = F.addFunction("main");
  uint32_t B = F.addFunction("b");
  uint32_t C = F.addFunction("c");
  F.addSpontaneous(Main);
  F.addCall(Main, B, 10);
  F.addCall(B, C, 100000);
  F.addCall(C, B, 3); // Low-count back arc.
  AnalyzerOptions Opts;
  Opts.AutoBreakCycleBound = 5;
  ProfileReport R = F.analyze(Opts);
  EXPECT_TRUE(R.Cycles.empty());
  ASSERT_EQ(R.RemovedArcs.size(), 1u);
  EXPECT_EQ(R.Functions[R.RemovedArcs[0].first].Name, "c");
  EXPECT_EQ(R.Functions[R.RemovedArcs[0].second].Name, "b");
}

TEST(AnalyzerTest, AutoBreakRespectsBound) {
  // Two independent 2-cycles, budget 1: one cycle must survive.
  ProfileFixture F;
  uint32_t Main = F.addFunction("main");
  uint32_t A = F.addFunction("a");
  uint32_t B = F.addFunction("b");
  uint32_t C = F.addFunction("c");
  uint32_t D = F.addFunction("d");
  F.addSpontaneous(Main);
  F.addCall(Main, A, 1);
  F.addCall(Main, C, 1);
  F.addCall(A, B, 10);
  F.addCall(B, A, 1);
  F.addCall(C, D, 10);
  F.addCall(D, C, 1);
  AnalyzerOptions Opts;
  Opts.AutoBreakCycleBound = 1;
  ProfileReport R = F.analyze(Opts);
  EXPECT_EQ(R.Cycles.size(), 1u);
  EXPECT_EQ(R.RemovedArcs.size(), 1u);
}

//===----------------------------------------------------------------------===//
// Listing orders, unused functions, report plumbing
//===----------------------------------------------------------------------===//

TEST(AnalyzerTest, FlatOrderByDecreasingSelfTime) {
  ProfileFixture F;
  uint32_t Main = F.addFunction("main");
  uint32_t A = F.addFunction("aa");
  uint32_t B = F.addFunction("bb");
  F.addSpontaneous(Main);
  F.addCall(Main, A, 1);
  F.addCall(Main, B, 1);
  F.setSelfSeconds(A, 0.5);
  F.setSelfSeconds(B, 2.0);
  ProfileReport R = F.analyze();
  ASSERT_EQ(R.FlatOrder.size(), 3u);
  EXPECT_EQ(R.Functions[R.FlatOrder[0]].Name, "bb");
  EXPECT_EQ(R.Functions[R.FlatOrder[1]].Name, "aa");
}

TEST(AnalyzerTest, GraphOrderByTotalTimeWithIndices) {
  ProfileFixture F;
  uint32_t Main = F.addFunction("main");
  uint32_t A = F.addFunction("a");
  F.addSpontaneous(Main);
  F.addCall(Main, A, 1);
  F.setSelfSeconds(A, 1.0);
  ProfileReport R = F.analyze();
  // main's total (1.0 inherited) ties with a's; order is by name then.
  EXPECT_EQ(fn(R, "main").ListingIndex + fn(R, "a").ListingIndex, 3u);
  for (uint32_t Pos = 0; Pos != R.GraphOrder.size(); ++Pos) {
    const ListingEntry &E = R.GraphOrder[Pos];
    uint32_t Idx = E.IsCycle ? R.Cycles[E.Index].ListingIndex
                             : R.Functions[E.Index].ListingIndex;
    EXPECT_EQ(Idx, Pos + 1);
  }
}

TEST(AnalyzerTest, UnusedFunctionsListed) {
  ProfileFixture F;
  uint32_t Main = F.addFunction("main");
  F.addFunction("never_a");
  F.addFunction("never_b");
  F.addSpontaneous(Main);
  F.setSelfSeconds(Main, 0.1);
  ProfileReport R = F.analyze();
  ASSERT_EQ(R.UnusedFunctions.size(), 2u);
  EXPECT_EQ(R.Functions[R.UnusedFunctions[0]].Name, "never_a");
  EXPECT_EQ(R.Functions[R.UnusedFunctions[1]].Name, "never_b");
  // Unused functions get no graph entry.
  EXPECT_EQ(fn(R, "never_a").ListingIndex, 0u);
}

TEST(AnalyzerTest, TopoNumbersValidOnReport) {
  ProfileFixture F;
  uint32_t Main = F.addFunction("main");
  uint32_t A = F.addFunction("a");
  uint32_t B = F.addFunction("b");
  F.addSpontaneous(Main);
  F.addCall(Main, A, 1);
  F.addCall(A, B, 1);
  ProfileReport R = F.analyze();
  EXPECT_GT(fn(R, "main").TopoNumber, fn(R, "a").TopoNumber);
  EXPECT_GT(fn(R, "a").TopoNumber, fn(R, "b").TopoNumber);
}

//===----------------------------------------------------------------------===//
// Printers
//===----------------------------------------------------------------------===//

namespace {

ProfileReport exampleReport() {
  ProfileFixture F;
  uint32_t Main = F.addFunction("main");
  uint32_t Work = F.addFunction("work");
  uint32_t Leaf = F.addFunction("leaf");
  F.addFunction("unused_fn");
  F.addSpontaneous(Main);
  F.addCall(Main, Work, 2);
  F.addCall(Work, Leaf, 10);
  F.addCall(Work, Work, 3); // Self recursion.
  F.setSelfSeconds(Work, 1.0);
  F.setSelfSeconds(Leaf, 3.0);
  return F.analyze();
}

} // namespace

TEST(FlatPrinterTest, RowsAndNeverCalledList) {
  std::string Out = printFlatProfile(exampleReport());
  EXPECT_NE(Out.find("leaf"), std::string::npos);
  EXPECT_NE(Out.find("75.0"), std::string::npos); // leaf: 3.0 of 4.0.
  EXPECT_NE(Out.find("routines never called"), std::string::npos);
  EXPECT_NE(Out.find("unused_fn"), std::string::npos);
  // Decreasing self-time order: leaf row precedes work row.
  EXPECT_LT(Out.find("leaf"), Out.find("work"));
}

TEST(FlatPrinterTest, ZeroUsageRowsOnRequest) {
  FlatPrintOptions Opts;
  Opts.ShowZeroUsage = true;
  std::string Out = printFlatProfile(exampleReport(), Opts);
  EXPECT_EQ(Out.find("routines never called"), std::string::npos);
  EXPECT_NE(Out.find("unused_fn"), std::string::npos);
}

TEST(GraphPrinterTest, EntryStructure) {
  ProfileReport R = exampleReport();
  std::string Out = printCallGraph(R);
  // work's entry shows its self-recursion as "2+3".
  EXPECT_NE(Out.find("2+3"), std::string::npos);
  // leaf's calls are shown as the 10/10 fraction.
  EXPECT_NE(Out.find("10/10"), std::string::npos);
  // main is spontaneous.
  EXPECT_NE(Out.find("<spontaneous>"), std::string::npos);
  // The index table is present and alphabetical.
  EXPECT_NE(Out.find("index by function name"), std::string::npos);
}

TEST(GraphPrinterTest, FiltersApply) {
  ProfileReport R = exampleReport();
  GraphPrintOptions Only;
  Only.OnlyFunctions = {"leaf"};
  Only.PrintIndex = false;
  std::string Out = printCallGraph(R, Only);
  // Only leaf's primary entry: the string "work [" appears only as a
  // parent row, and main's entry is absent entirely.
  EXPECT_NE(Out.find("leaf ["), std::string::npos);
  EXPECT_EQ(Out.find("<spontaneous>"), std::string::npos);

  GraphPrintOptions Exclude;
  Exclude.ExcludeFunctions = {"leaf"};
  Exclude.PrintIndex = false;
  std::string Out2 = printCallGraph(R, Exclude);
  // leaf's primary line (which starts a line with its index) is gone,
  // though leaf still appears as a child row in work's entry.
  std::string LeafPrimary =
      format("\n[%u]", R.Functions[R.findFunction("leaf")].ListingIndex);
  std::string Full = printCallGraph(R, GraphPrintOptions{});
  EXPECT_NE(Full.find(LeafPrimary), std::string::npos);
  EXPECT_EQ(Out2.find(LeafPrimary), std::string::npos);
}

TEST(GraphPrinterTest, SingleEntryHelper) {
  ProfileReport R = exampleReport();
  std::string Out = printCallGraphEntry(R, "work");
  EXPECT_NE(Out.find("work"), std::string::npos);
  EXPECT_NE(Out.find("leaf"), std::string::npos);
  EXPECT_EQ(printCallGraphEntry(R, "missing"), "");
}

TEST(GraphPrinterTest, CycleEntryRendered) {
  ProfileFixture F;
  uint32_t Main = F.addFunction("main");
  uint32_t A = F.addFunction("alpha");
  uint32_t B = F.addFunction("beta");
  F.addSpontaneous(Main);
  F.addCall(Main, A, 4);
  F.addCall(A, B, 7);
  F.addCall(B, A, 6);
  F.setSelfSeconds(A, 1.0);
  F.setSelfSeconds(B, 1.0);
  ProfileReport R = F.analyze();
  std::string Out = printCallGraph(R);
  EXPECT_NE(Out.find("<cycle 1 as a whole>"), std::string::npos);
  EXPECT_NE(Out.find("alpha <cycle1>"), std::string::npos);
  EXPECT_NE(Out.find("beta <cycle1>"), std::string::npos);
  // The cycle's primary line shows external+internal calls: "4+13".
  EXPECT_NE(Out.find("4+13"), std::string::npos);
}
