//===- tests/vm_test.cpp - Unit tests for the bytecode VM substrate -------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "vm/Bytecode.h"
#include "vm/CodeGen.h"
#include "vm/Disassembler.h"
#include "vm/Image.h"
#include "vm/StaticCallScanner.h"
#include "vm/VM.h"

#include <gtest/gtest.h>

#include <set>

using namespace gprof;

namespace {

/// Compiles and runs, returning the result.
RunResult runOk(std::string_view Src, CodeGenOptions CG = {},
                VMOptions VO = {}) {
  Image Img = compileTLOrDie(Src, CG);
  VM Machine(Img, VO);
  auto R = Machine.run();
  EXPECT_TRUE(static_cast<bool>(R)) << R.message();
  return R.takeValue();
}

/// Compiles and runs, expecting a trap whose message contains \p Needle.
void runTrap(std::string_view Src, const std::string &Needle) {
  Image Img = compileTLOrDie(Src);
  VM Machine(Img);
  auto R = Machine.run();
  ASSERT_FALSE(static_cast<bool>(R));
  EXPECT_NE(R.message().find(Needle), std::string::npos) << R.message();
  (void)R.takeError();
}

} // namespace

//===----------------------------------------------------------------------===//
// Arithmetic and control flow semantics
//===----------------------------------------------------------------------===//

TEST(VMTest, ArithmeticBasics) {
  EXPECT_EQ(runOk("fn main() { return 2 + 3 * 4; }").ExitValue, 14);
  EXPECT_EQ(runOk("fn main() { return (2 + 3) * 4; }").ExitValue, 20);
  EXPECT_EQ(runOk("fn main() { return 17 / 5; }").ExitValue, 3);
  EXPECT_EQ(runOk("fn main() { return 17 % 5; }").ExitValue, 2);
  EXPECT_EQ(runOk("fn main() { return -7; }").ExitValue, -7);
  EXPECT_EQ(runOk("fn main() { return 10 - 2 - 3; }").ExitValue, 5);
}

TEST(VMTest, Comparisons) {
  EXPECT_EQ(runOk("fn main() { return 1 < 2; }").ExitValue, 1);
  EXPECT_EQ(runOk("fn main() { return 2 < 1; }").ExitValue, 0);
  EXPECT_EQ(runOk("fn main() { return 2 <= 2; }").ExitValue, 1);
  EXPECT_EQ(runOk("fn main() { return 3 > 2; }").ExitValue, 1);
  EXPECT_EQ(runOk("fn main() { return 3 >= 4; }").ExitValue, 0);
  EXPECT_EQ(runOk("fn main() { return 5 == 5; }").ExitValue, 1);
  EXPECT_EQ(runOk("fn main() { return 5 != 5; }").ExitValue, 0);
}

TEST(VMTest, LogicalOperatorsNormalizeAndShortCircuit) {
  EXPECT_EQ(runOk("fn main() { return 7 && 9; }").ExitValue, 1);
  EXPECT_EQ(runOk("fn main() { return 7 && 0; }").ExitValue, 0);
  EXPECT_EQ(runOk("fn main() { return 0 || 5; }").ExitValue, 1);
  EXPECT_EQ(runOk("fn main() { return 0 || 0; }").ExitValue, 0);
  EXPECT_EQ(runOk("fn main() { return !0; }").ExitValue, 1);
  EXPECT_EQ(runOk("fn main() { return !42; }").ExitValue, 0);
  // Short circuit: the division by zero on the RHS must not execute.
  EXPECT_EQ(runOk("fn main() { return 0 && (1 / 0); }").ExitValue, 0);
  EXPECT_EQ(runOk("fn main() { return 1 || (1 / 0); }").ExitValue, 1);
}

TEST(VMTest, TwosComplementWraparound) {
  // 2^62 * 4 wraps to 0; 2^63-1 + 1 wraps negative.
  EXPECT_EQ(runOk("fn main() { var x = 4611686018427387904; "
                  "return x * 4; }")
                .ExitValue,
            0);
  EXPECT_EQ(runOk("fn main() { var x = 9223372036854775807; "
                  "return x + 1; }")
                .ExitValue,
            INT64_MIN);
  // Negating INT64_MIN wraps to itself.
  EXPECT_EQ(runOk("fn main() { var x = 9223372036854775807; "
                  "return -(x + 1); }")
                .ExitValue,
            INT64_MIN);
}

TEST(VMTest, SignedDivisionAndRemainder) {
  EXPECT_EQ(runOk("fn main() { return (0 - 7) / 2; }").ExitValue, -3);
  EXPECT_EQ(runOk("fn main() { return (0 - 7) % 2; }").ExitValue, -1);
  EXPECT_EQ(runOk("fn main() { return 7 / (0 - 2); }").ExitValue, -3);
  runTrap("fn main() { var x = 9223372036854775807; "
          "return (-(x + 1)) / (0 - 1); }",
          "overflow");
}

TEST(VMTest, WhileLoopAndAssignment) {
  RunResult R = runOk(R"(
    fn main() {
      var sum = 0;
      var i = 1;
      while (i <= 100) {
        sum = sum + i;
        i = i + 1;
      }
      return sum;
    }
  )");
  EXPECT_EQ(R.ExitValue, 5050);
}

TEST(VMTest, IfElse) {
  EXPECT_EQ(runOk(R"(
    fn classify(x) {
      if (x < 0) { return 0 - 1; }
      else if (x == 0) { return 0; }
      else { return 1; }
    }
    fn main() { return classify(0-5) * 100 + classify(0) * 10 + classify(7); }
  )").ExitValue, -100 + 0 + 7 / 7);
}

TEST(VMTest, AssignmentIsAnExpression) {
  EXPECT_EQ(runOk("fn main() { var a = 0; var b = (a = 5) + 1; "
                  "return a * 10 + b; }")
                .ExitValue,
            56);
}

TEST(VMTest, GlobalsPersistAndInitialize) {
  RunResult R = runOk(R"(
    var counter = 10;
    fn bump() { counter = counter + 1; return counter; }
    fn main() { bump(); bump(); return bump(); }
  )");
  EXPECT_EQ(R.ExitValue, 13);
}

TEST(VMTest, PrintCollectsValues) {
  RunResult R = runOk("fn main() { print 1; print 2 + 3; return 0; }");
  ASSERT_EQ(R.Printed.size(), 2u);
  EXPECT_EQ(R.Printed[0], 1);
  EXPECT_EQ(R.Printed[1], 5);
}

//===----------------------------------------------------------------------===//
// Calls: direct, indirect, recursive
//===----------------------------------------------------------------------===//

TEST(VMTest, DirectCallsAndReturnValues) {
  EXPECT_EQ(runOk(R"(
    fn add(a, b) { return a + b; }
    fn twice(x) { return add(x, x); }
    fn main() { return twice(21); }
  )").ExitValue, 42);
}

TEST(VMTest, RecursionFibonacci) {
  EXPECT_EQ(runOk(R"(
    fn fib(n) {
      if (n < 2) { return n; }
      return fib(n - 1) + fib(n - 2);
    }
    fn main() { return fib(15); }
  )").ExitValue, 610);
}

TEST(VMTest, MutualRecursion) {
  EXPECT_EQ(runOk(R"(
    fn is_even(n) { if (n == 0) { return 1; } return is_odd(n - 1); }
    fn is_odd(n) { if (n == 0) { return 0; } return is_even(n - 1); }
    fn main() { return is_even(10) * 10 + is_odd(7); }
  )").ExitValue, 11);
}

TEST(VMTest, IndirectCallsThroughFunctionValues) {
  EXPECT_EQ(runOk(R"(
    fn double(x) { return 2 * x; }
    fn triple(x) { return 3 * x; }
    fn apply(f, x) { return f(x); }
    fn main() { return apply(&double, 10) + apply(&triple, 10); }
  )").ExitValue, 50);
}

TEST(VMTest, BareFunctionNameIsAValue) {
  EXPECT_EQ(runOk(R"(
    fn inc(x) { return x + 1; }
    fn main() {
      var f = inc;
      return f(41);
    }
  )").ExitValue, 42);
}

TEST(VMTest, PeekPokeMemory) {
  RunResult R = runOk(R"(
    fn main() {
      poke(0, 11);
      poke(1, 22);
      poke(2, peek(0) + peek(1));
      print peek(2);
      return peek(2) * 10 + (poke(5, 7)); // poke yields the value.
    }
  )");
  ASSERT_EQ(R.Printed.size(), 1u);
  EXPECT_EQ(R.Printed[0], 33);
  EXPECT_EQ(R.ExitValue, 337);
}

TEST(VMTest, MemoryZeroInitializedAndResetBetweenRuns) {
  Image Img = compileTLOrDie(R"(
    fn main() {
      var old = peek(9);
      poke(9, 42);
      return old;
    }
  )");
  VM Machine(Img);
  EXPECT_EQ(cantFail(Machine.run()).ExitValue, 0);
  // run() resets memory, so the second run sees zero again.
  EXPECT_EQ(cantFail(Machine.run()).ExitValue, 0);
}

TEST(VMTest, MemoryOutOfRangeTraps) {
  runTrap("fn main() { return peek(0 - 1); }", "out of range");
  runTrap("fn main() { return peek(99999999); }", "out of range");
  runTrap("fn main() { return poke(99999999, 1); }", "out of range");
}

TEST(VMTest, BuiltinsShadowedByUserFunctions) {
  // A user-defined peek takes precedence over the built-in.
  EXPECT_EQ(runOk(R"(
    fn peek(x) { return x + 100; }
    fn main() { return peek(1); }
  )").ExitValue, 101);
}

TEST(VMTest, BuiltinArityChecked) {
  DiagnosticEngine Diags;
  auto Img = compileTL("fn main() { return peek(1, 2); }", {}, Diags);
  EXPECT_FALSE(static_cast<bool>(Img));
  (void)Img.takeError();
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(VMTest, FallOffEndReturnsZero) {
  EXPECT_EQ(runOk("fn f() { } fn main() { return f() + 5; }").ExitValue, 5);
}

TEST(VMTest, CallPersistentGlobalsAcrossCalls) {
  Image Img = compileTLOrDie(R"(
    var state = 0;
    fn step(n) { state = state + n; return state; }
    fn main() { return step(1); }
  )");
  VM Machine(Img);
  EXPECT_EQ(cantFail(Machine.call("step", {5})).ExitValue, 5);
  EXPECT_EQ(cantFail(Machine.call("step", {7})).ExitValue, 12);
  Machine.resetGlobals();
  EXPECT_EQ(cantFail(Machine.call("step", {1})).ExitValue, 1);
}

TEST(VMTest, CallUnknownFunctionFails) {
  Image Img = compileTLOrDie("fn main() { return 0; }");
  VM Machine(Img);
  auto R = Machine.call("nope", {});
  EXPECT_FALSE(static_cast<bool>(R));
  (void)R.takeError();
}

TEST(VMTest, CallArityMismatchFails) {
  Image Img = compileTLOrDie(
      "fn f(a) { return a; } fn main() { return f(0); }");
  VM Machine(Img);
  auto R = Machine.call("f", {});
  EXPECT_FALSE(static_cast<bool>(R));
  (void)R.takeError();
}

//===----------------------------------------------------------------------===//
// Traps
//===----------------------------------------------------------------------===//

TEST(VMTest, DivisionByZeroTraps) {
  runTrap("fn main() { return 1 / 0; }", "division by zero");
  runTrap("fn main() { return 1 % 0; }", "division by zero");
}

TEST(VMTest, IndirectCallToNonFunctionTraps) {
  runTrap("fn main() { var f = 1234; return f(); }",
          "invalid function value");
}

TEST(VMTest, IndirectCallArityMismatchTraps) {
  runTrap(R"(
    fn f(a, b) { return a + b; }
    fn main() { var g = &f; return g(1); }
  )",
          "takes 2");
}

TEST(VMTest, InfiniteRecursionTrapsAtDepthLimit) {
  Image Img = compileTLOrDie("fn f() { return f(); } "
                             "fn main() { return f(); }");
  VMOptions VO;
  VO.MaxCallDepth = 1000;
  VM Machine(Img, VO);
  auto R = Machine.run();
  ASSERT_FALSE(static_cast<bool>(R));
  EXPECT_NE(R.message().find("stack overflow"), std::string::npos);
  (void)R.takeError();
}

TEST(VMTest, CycleLimitTraps) {
  Image Img = compileTLOrDie("fn main() { while (1) { } return 0; }");
  VMOptions VO;
  VO.MaxCycles = 10000;
  VM Machine(Img, VO);
  auto R = Machine.run();
  ASSERT_FALSE(static_cast<bool>(R));
  EXPECT_NE(R.message().find("cycle limit"), std::string::npos);
  (void)R.takeError();
}

//===----------------------------------------------------------------------===//
// Determinism and the virtual clock
//===----------------------------------------------------------------------===//

TEST(VMTest, RunsAreDeterministic) {
  Image Img = compileTLOrDie(R"(
    fn fib(n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
    fn main() { return fib(12); }
  )");
  VM A(Img), B(Img);
  RunResult RA = cantFail(A.run());
  RunResult RB = cantFail(B.run());
  EXPECT_EQ(RA.ExitValue, RB.ExitValue);
  EXPECT_EQ(RA.Cycles, RB.Cycles);
  EXPECT_EQ(RA.Instructions, RB.Instructions);
  EXPECT_EQ(RA.Ticks, RB.Ticks);
}

TEST(VMTest, TickCountMatchesClock) {
  VMOptions VO;
  VO.CyclesPerTick = 100;
  RunResult R = runOk(R"(
    fn main() {
      var i = 0;
      while (i < 1000) { i = i + 1; }
      return i;
    }
  )",
                      {}, VO);
  EXPECT_EQ(R.Ticks, R.Cycles / 100);
}

TEST(VMTest, ProfiledRunExecutesSameProgram) {
  const char *Src = R"(
    fn fib(n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
    fn main() { return fib(14); }
  )";
  CodeGenOptions Plain, Profiled;
  Profiled.EnableProfiling = true;
  RunResult A = runOk(Src, Plain);
  RunResult B = runOk(Src, Profiled);
  EXPECT_EQ(A.ExitValue, B.ExitValue);
  // The profiled version executes one extra Mcount per call.
  EXPECT_GT(B.Instructions, A.Instructions);
  EXPECT_GT(B.Cycles, A.Cycles);
}

//===----------------------------------------------------------------------===//
// Profiling hooks
//===----------------------------------------------------------------------===//

namespace {

/// Collects raw hook events for inspection.
struct RecordingHooks : ProfileHooks {
  std::vector<std::pair<Address, Address>> Calls;
  uint64_t Ticks = 0;

  void onCall(Address FromPc, Address SelfPc) override {
    Calls.emplace_back(FromPc, SelfPc);
  }
  void onTick(Address) override { ++Ticks; }
};

} // namespace

TEST(VMTest, McountReportsArcsWithCallSites) {
  CodeGenOptions CG;
  CG.EnableProfiling = true;
  Image Img = compileTLOrDie(R"(
    fn leaf() { return 1; }
    fn mid() { return leaf() + leaf(); }
    fn main() { return mid(); }
  )",
                             CG);
  RecordingHooks Hooks;
  VM Machine(Img);
  Machine.setHooks(&Hooks);
  cantFail(Machine.run());

  Address LeafAddr = 0, MidAddr = 0, MainAddr = 0;
  for (const FuncInfo &F : Img.Functions) {
    if (F.Name == "leaf")
      LeafAddr = F.Addr;
    if (F.Name == "mid")
      MidAddr = F.Addr;
    if (F.Name == "main")
      MainAddr = F.Addr;
  }

  // main's activation is spontaneous: its FromPc (0) is outside the text.
  ASSERT_EQ(Hooks.Calls.size(), 4u);
  EXPECT_EQ(Hooks.Calls[0].second, MainAddr);
  EXPECT_LT(Hooks.Calls[0].first, Img.lowPc());

  // mid called from inside main; both leaf calls from inside mid, at two
  // *different* call sites.
  EXPECT_EQ(Hooks.Calls[1].second, MidAddr);
  const FuncInfo *MainFn = Img.findFunctionContaining(Hooks.Calls[1].first);
  ASSERT_NE(MainFn, nullptr);
  EXPECT_EQ(MainFn->Name, "main");

  EXPECT_EQ(Hooks.Calls[2].second, LeafAddr);
  EXPECT_EQ(Hooks.Calls[3].second, LeafAddr);
  EXPECT_NE(Hooks.Calls[2].first, Hooks.Calls[3].first);
  const FuncInfo *MidFn = Img.findFunctionContaining(Hooks.Calls[2].first);
  ASSERT_NE(MidFn, nullptr);
  EXPECT_EQ(MidFn->Name, "mid");
}

TEST(VMTest, UnprofiledFunctionsSkipMcount) {
  CodeGenOptions CG;
  CG.EnableProfiling = true;
  CG.UnprofiledFunctions = {"leaf"};
  Image Img = compileTLOrDie(R"(
    fn leaf() { return 1; }
    fn main() { return leaf(); }
  )",
                             CG);
  RecordingHooks Hooks;
  VM Machine(Img);
  Machine.setHooks(&Hooks);
  cantFail(Machine.run());
  // Only main reports: leaf runs "at full speed".
  ASSERT_EQ(Hooks.Calls.size(), 1u);
  const FuncInfo *F = Img.findFunctionAt(Hooks.Calls[0].second);
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->Name, "main");
}

//===----------------------------------------------------------------------===//
// Image serialization
//===----------------------------------------------------------------------===//

TEST(ImageTest, SerializationRoundTrip) {
  CodeGenOptions CG;
  CG.EnableProfiling = true;
  Image Img = compileTLOrDie(R"(
    var g = 9;
    fn f(a) { return a + g; }
    fn main() { return f(1); }
  )",
                             CG);
  auto Back = Image::deserialize(Img.serialize());
  ASSERT_TRUE(static_cast<bool>(Back));
  EXPECT_EQ(Back->Code, Img.Code);
  ASSERT_EQ(Back->Functions.size(), Img.Functions.size());
  for (size_t I = 0; I != Img.Functions.size(); ++I) {
    EXPECT_EQ(Back->Functions[I].Name, Img.Functions[I].Name);
    EXPECT_EQ(Back->Functions[I].Addr, Img.Functions[I].Addr);
    EXPECT_EQ(Back->Functions[I].CodeSize, Img.Functions[I].CodeSize);
    EXPECT_EQ(Back->Functions[I].NumParams, Img.Functions[I].NumParams);
    EXPECT_EQ(Back->Functions[I].Profiled, Img.Functions[I].Profiled);
  }
  EXPECT_EQ(Back->GlobalNames, Img.GlobalNames);
  EXPECT_EQ(Back->GlobalInits, Img.GlobalInits);
  EXPECT_EQ(Back->EntryFunction, Img.EntryFunction);

  // The reloaded image must execute identically.
  VM A(Img), B(*Back);
  EXPECT_EQ(cantFail(A.run()).ExitValue, cantFail(B.run()).ExitValue);
}

TEST(ImageTest, CorruptImagesRejected) {
  Image Img = compileTLOrDie("fn main() { return 0; }");
  auto Bytes = Img.serialize();
  {
    auto Bad = Bytes;
    Bad[0] = 'Z';
    auto R = Image::deserialize(Bad);
    EXPECT_FALSE(static_cast<bool>(R));
    (void)R.takeError();
  }
  {
    std::vector<uint8_t> Short(Bytes.begin(), Bytes.begin() + 10);
    auto R = Image::deserialize(Short);
    EXPECT_FALSE(static_cast<bool>(R));
    (void)R.takeError();
  }
  {
    auto Bad = Bytes;
    Bad.push_back(7);
    auto R = Image::deserialize(Bad);
    EXPECT_FALSE(static_cast<bool>(R));
    (void)R.takeError();
  }
}

TEST(ImageTest, SymbolLookup) {
  Image Img = compileTLOrDie(R"(
    fn a() { return 1; }
    fn b() { return 2; }
    fn main() { return a() + b(); }
  )");
  for (const FuncInfo &F : Img.Functions) {
    EXPECT_EQ(Img.findFunctionAt(F.Addr), &F);
    EXPECT_EQ(Img.findFunctionContaining(F.Addr + F.CodeSize - 1), &F);
  }
  EXPECT_EQ(Img.findFunctionContaining(Img.lowPc() - 1), nullptr);
  EXPECT_EQ(Img.findFunctionContaining(Img.highPc()), nullptr);
  EXPECT_EQ(Img.findFunctionAt(Img.Functions[0].Addr + 1), nullptr);
}

//===----------------------------------------------------------------------===//
// Disassembler and static call scanner
//===----------------------------------------------------------------------===//

TEST(DisassemblerTest, ListsAllFunctionsAndCalls) {
  CodeGenOptions CG;
  CG.EnableProfiling = true;
  Image Img = compileTLOrDie(R"(
    fn callee(x) { return x; }
    fn main() { return callee(1); }
  )",
                             CG);
  std::string Listing = disassemble(Img);
  EXPECT_NE(Listing.find("callee:"), std::string::npos);
  EXPECT_NE(Listing.find("main:"), std::string::npos);
  EXPECT_NE(Listing.find("mcount"), std::string::npos);
  EXPECT_NE(Listing.find("call"), std::string::npos);
  EXPECT_NE(Listing.find("callee, 1 args"), std::string::npos);
}

TEST(StaticScanTest, FindsDirectCallsIncludingUnexecuted) {
  Image Img = compileTLOrDie(R"(
    fn used() { return 1; }
    fn unused_callee() { return 2; }
    fn maybe(x) {
      if (x) { return unused_callee(); }
      return used();
    }
    fn main() { return maybe(0); }
  )");
  StaticScanResult Scan = scanStaticCalls(Img);

  // Arcs: maybe->unused_callee, maybe->used, main->maybe.
  ASSERT_EQ(Scan.DirectCalls.size(), 3u);
  std::set<std::pair<std::string, std::string>> Arcs;
  for (const StaticArc &A : Scan.DirectCalls) {
    const FuncInfo *From = Img.findFunctionContaining(A.CallSitePc);
    const FuncInfo *To = Img.findFunctionAt(A.TargetPc);
    ASSERT_NE(From, nullptr);
    ASSERT_NE(To, nullptr);
    Arcs.emplace(From->Name, To->Name);
  }
  EXPECT_TRUE(Arcs.count({"maybe", "unused_callee"}));
  EXPECT_TRUE(Arcs.count({"maybe", "used"}));
  EXPECT_TRUE(Arcs.count({"main", "maybe"}));
}

TEST(StaticScanTest, IndirectSitesAndAddressTaken) {
  Image Img = compileTLOrDie(R"(
    fn f(x) { return x; }
    fn g(x) { return x + 1; }
    fn main() {
      var h = &f;
      if (0) { h = &g; }
      return h(1);
    }
  )");
  StaticScanResult Scan = scanStaticCalls(Img);
  EXPECT_EQ(Scan.DirectCalls.size(), 0u);
  EXPECT_EQ(Scan.IndirectCallSites.size(), 1u);
  // Both f and g have their address taken.
  ASSERT_EQ(Scan.AddressTaken.size(), 2u);
  EXPECT_NE(Img.findFunctionAt(Scan.AddressTaken[0]), nullptr);
  EXPECT_NE(Img.findFunctionAt(Scan.AddressTaken[1]), nullptr);
}

TEST(BytecodeTest, InstructionSizesConsistent) {
  // Every opcode's size covers at least the opcode byte, and the cycle
  // cost is nonzero.
  for (unsigned Op = 0; Op != static_cast<unsigned>(Opcode::NumOpcodes);
       ++Op) {
    EXPECT_GE(instructionSize(static_cast<Opcode>(Op)), 1u);
    EXPECT_GE(opcodeCycleCost(static_cast<Opcode>(Op)), 1u);
    EXPECT_NE(opcodeName(static_cast<Opcode>(Op)), nullptr);
  }
}
