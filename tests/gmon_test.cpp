//===- tests/gmon_test.cpp - Unit tests for the profile data model --------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "gmon/GmonFile.h"
#include "gmon/Histogram.h"
#include "gmon/ProfileData.h"
#include "support/Format.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>

using namespace gprof;

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

TEST(HistogramTest, BucketGeometry) {
  Histogram H(100, 200, 10);
  EXPECT_EQ(H.numBuckets(), 10u);
  EXPECT_EQ(H.bucketStart(0), 100u);
  EXPECT_EQ(H.bucketEnd(0), 110u);
  EXPECT_EQ(H.bucketStart(9), 190u);
  EXPECT_EQ(H.bucketEnd(9), 200u);
}

TEST(HistogramTest, PartialFinalBucket) {
  Histogram H(0, 25, 10);
  EXPECT_EQ(H.numBuckets(), 3u);
  EXPECT_EQ(H.bucketEnd(2), 25u); // Clamped.
}

TEST(HistogramTest, RecordInRange) {
  Histogram H(100, 200, 10);
  H.recordPc(100);
  H.recordPc(109);
  H.recordPc(110);
  H.recordPc(199);
  EXPECT_EQ(H.bucketCount(0), 2u);
  EXPECT_EQ(H.bucketCount(1), 1u);
  EXPECT_EQ(H.bucketCount(9), 1u);
  EXPECT_EQ(H.totalSamples(), 4u);
  EXPECT_EQ(H.outOfRangeSamples(), 0u);
}

TEST(HistogramTest, OutOfRangeCountedSeparately) {
  Histogram H(100, 200, 10);
  H.recordPc(99);
  H.recordPc(200);
  H.recordPc(5000);
  EXPECT_EQ(H.totalSamples(), 0u);
  EXPECT_EQ(H.outOfRangeSamples(), 3u);
}

TEST(HistogramTest, OneToOneGranularity) {
  // The retrospective's epiphany: bucket size 1 gives a full count per PC.
  Histogram H(0, 100, 1);
  EXPECT_EQ(H.numBuckets(), 100u);
  for (int I = 0; I != 5; ++I)
    H.recordPc(42);
  EXPECT_EQ(H.bucketCount(42), 5u);
}

TEST(HistogramTest, MergeAddsBuckets) {
  Histogram A(0, 100, 10), B(0, 100, 10);
  A.recordPc(5);
  B.recordPc(5);
  B.recordPc(95);
  cantFail(A.merge(B));
  EXPECT_EQ(A.bucketCount(0), 2u);
  EXPECT_EQ(A.bucketCount(9), 1u);
}

TEST(HistogramTest, MergeRejectsMismatchedRanges) {
  Histogram A(0, 100, 10), B(0, 200, 10);
  Error E = A.merge(B);
  EXPECT_TRUE(static_cast<bool>(E));
  Histogram C(0, 100, 20);
  Error E2 = A.merge(C);
  EXPECT_TRUE(static_cast<bool>(E2));
}

TEST(HistogramTest, EmptyMergesWithEmpty) {
  Histogram A, B;
  cantFail(A.merge(B));
  EXPECT_TRUE(A.empty());
}

TEST(HistogramTest, EmptySideAdoptsOtherGeometry) {
  // Regression: an empty histogram (a run with no samples) used to be
  // rejected as incompatible with a sampled sibling.
  Histogram Sampled(0, 100, 10);
  Sampled.recordPc(5);
  Sampled.recordPc(95);
  Sampled.recordPc(1000); // Out of range.

  Histogram Empty;
  cantFail(Empty.merge(Sampled));
  EXPECT_EQ(Empty.lowPc(), 0u);
  EXPECT_EQ(Empty.highPc(), 100u);
  EXPECT_EQ(Empty.bucketSize(), 10u);
  EXPECT_EQ(Empty.counts(), Sampled.counts());
  EXPECT_EQ(Empty.outOfRangeSamples(), 1u);

  // The other direction: merging an empty side changes nothing.
  Histogram Unsampled;
  Unsampled.recordPc(7); // Empty histogram: counted as out-of-range.
  cantFail(Sampled.merge(Unsampled));
  EXPECT_EQ(Sampled.totalSamples(), 2u);
  EXPECT_EQ(Sampled.outOfRangeSamples(), 2u);
}

TEST(HistogramTest, SaturatingAddClampsAtMax) {
  EXPECT_EQ(saturatingAdd(2, 3), 5u);
  EXPECT_EQ(saturatingAdd(UINT64_MAX - 1, 1), UINT64_MAX);
  EXPECT_EQ(saturatingAdd(UINT64_MAX, 1), UINT64_MAX);
  EXPECT_EQ(saturatingAdd(UINT64_MAX, UINT64_MAX), UINT64_MAX);
  EXPECT_EQ(saturatingAdd(0, 0), 0u);
}

TEST(HistogramTest, MergeSaturatesInsteadOfWrapping) {
  Histogram A(0, 10, 10), B(0, 10, 10);
  A.setBucketCount(0, UINT64_MAX - 1);
  B.setBucketCount(0, 5);
  cantFail(A.merge(B));
  // Regression: this used to wrap to 3 and silently restart the count.
  EXPECT_EQ(A.bucketCount(0), UINT64_MAX);
}

//===----------------------------------------------------------------------===//
// ProfileData
//===----------------------------------------------------------------------===//

TEST(ProfileDataTest, AddArcMerges) {
  ProfileData D;
  D.addArc(10, 20, 1);
  D.addArc(10, 20, 2);
  D.addArc(10, 30, 5);
  ASSERT_EQ(D.Arcs.size(), 2u);
  EXPECT_EQ(D.Arcs[0].Count, 3u);
  EXPECT_EQ(D.callsInto(20), 3u);
  EXPECT_EQ(D.callsInto(30), 5u);
  EXPECT_EQ(D.callsInto(99), 0u);
}

TEST(ProfileDataTest, MergeSumsRunsAndArcs) {
  ProfileData A, B;
  A.Hist = Histogram(0, 100, 1);
  B.Hist = Histogram(0, 100, 1);
  A.Hist.recordPc(1);
  B.Hist.recordPc(1);
  A.addArc(5, 6, 7);
  B.addArc(5, 6, 3);
  B.addArc(8, 9, 1);
  B.ArcTableOverflowed = true;
  cantFail(A.merge(B));
  EXPECT_EQ(A.RunCount, 2u);
  EXPECT_EQ(A.Hist.bucketCount(1), 2u);
  EXPECT_EQ(A.callsInto(6), 10u);
  EXPECT_EQ(A.callsInto(9), 1u);
  EXPECT_TRUE(A.ArcTableOverflowed);
}

TEST(ProfileDataTest, MergeAdoptsHistogramFromSampledSide) {
  // Regression: a run that recorded arcs but exited before the first
  // sample tick has no histogram and must still sum with a sampled run.
  ProfileData Unsampled;
  Unsampled.addArc(5, 6, 7);
  ProfileData Sampled;
  Sampled.Hist = Histogram(0, 100, 1);
  Sampled.Hist.recordPc(3);
  Sampled.addArc(5, 6, 1);

  ProfileData A = Unsampled;
  cantFail(A.merge(Sampled));
  EXPECT_EQ(A.Hist.totalSamples(), 1u);
  EXPECT_EQ(A.Hist.highPc(), 100u);
  EXPECT_EQ(A.callsInto(6), 8u);
  EXPECT_EQ(A.RunCount, 2u);

  ProfileData B = Sampled;
  cantFail(B.merge(Unsampled));
  EXPECT_EQ(B.Hist.totalSamples(), 1u);
  EXPECT_EQ(B.callsInto(6), 8u);
}

TEST(ProfileDataTest, AddArcSaturatesInsteadOfWrapping) {
  ProfileData D;
  D.addArc(1, 2, UINT64_MAX - 3);
  D.addArc(1, 2, 10);
  ASSERT_EQ(D.Arcs.size(), 1u);
  EXPECT_EQ(D.Arcs[0].Count, UINT64_MAX);
  EXPECT_EQ(D.callsInto(2), UINT64_MAX);
  // A second saturating add stays clamped.
  D.addArc(1, 2, 1);
  EXPECT_EQ(D.Arcs[0].Count, UINT64_MAX);
}

TEST(ProfileDataTest, ArcIndexSurvivesExternalMutation) {
  // The lazy index must revalidate after external code sorts or rewrites
  // the arc table directly.
  ProfileData D;
  D.addArc(30, 3, 1);
  D.addArc(20, 2, 1);
  D.addArc(10, 1, 1);
  EXPECT_EQ(D.callsInto(2), 1u); // Builds the index.
  std::sort(D.Arcs.begin(), D.Arcs.end(),
            [](const ArcRecord &A, const ArcRecord &B) {
              return A.FromPc < B.FromPc;
            });
  D.addArc(30, 3, 5); // Positional lookup detects the move and rebuilds.
  ASSERT_EQ(D.Arcs.size(), 3u);
  EXPECT_EQ(D.callsInto(3), 6u);
  EXPECT_EQ(D.callsInto(2), 1u);
  // In-place Count mutation needs the documented explicit invalidation.
  D.Arcs[0].Count = 100;
  D.invalidateArcIndex();
  EXPECT_EQ(D.callsInto(D.Arcs[0].SelfPc), 100u);
}

TEST(ProfileDataTest, AddArcIndexBeatsLinearScan) {
  // The historical addArc scanned the table linearly, making M-file
  // summing O(M·A²).  Sum the same synthetic files through a faithful
  // copy of the old scan and through the indexed addArc: identical output,
  // and the index must win by a wide margin (the acceptance bar is 10x).
  constexpr size_t Files = 20, ArcsPerFile = 4000;
  std::vector<ArcRecord> FileArcs;
  FileArcs.reserve(ArcsPerFile);
  SplitMix64 Rng(99);
  for (size_t I = 0; I != ArcsPerFile; ++I)
    FileArcs.push_back({Rng.next() | 1, Rng.next() | 1, 1 + (I % 7)});

  auto Clock = [] {
    return std::chrono::steady_clock::now();
  };

  auto LinearStart = Clock();
  std::vector<ArcRecord> Reference;
  for (size_t F = 0; F != Files; ++F)
    for (const ArcRecord &R : FileArcs) {
      bool Found = false;
      for (ArcRecord &Existing : Reference)
        if (Existing.FromPc == R.FromPc && Existing.SelfPc == R.SelfPc) {
          Existing.Count += R.Count;
          Found = true;
          break;
        }
      if (!Found)
        Reference.push_back(R);
    }
  auto LinearNs = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      Clock() - LinearStart)
                      .count();

  auto IndexedStart = Clock();
  ProfileData D;
  for (size_t F = 0; F != Files; ++F)
    for (const ArcRecord &R : FileArcs)
      D.addArc(R.FromPc, R.SelfPc, R.Count);
  auto IndexedNs = std::chrono::duration_cast<std::chrono::nanoseconds>(
                       Clock() - IndexedStart)
                       .count();

  // Byte-identical result: same records in the same first-seen order.
  ASSERT_EQ(D.Arcs.size(), Reference.size());
  for (size_t I = 0; I != Reference.size(); ++I) {
    EXPECT_EQ(D.Arcs[I].FromPc, Reference[I].FromPc) << I;
    EXPECT_EQ(D.Arcs[I].SelfPc, Reference[I].SelfPc) << I;
    EXPECT_EQ(D.Arcs[I].Count, Reference[I].Count) << I;
  }
  EXPECT_GT(LinearNs, IndexedNs * 10)
      << "linear " << LinearNs << "ns vs indexed " << IndexedNs << "ns";
}

TEST(ProfileDataTest, MergeRejectsDifferentRates) {
  ProfileData A, B;
  A.TicksPerSecond = 60;
  B.TicksPerSecond = 100;
  Error E = A.merge(B);
  EXPECT_TRUE(static_cast<bool>(E));
}

TEST(ProfileDataTest, SampledSeconds) {
  ProfileData D;
  D.TicksPerSecond = 60;
  D.Hist = Histogram(0, 10, 1);
  for (int I = 0; I != 120; ++I)
    D.Hist.recordPc(3);
  EXPECT_DOUBLE_EQ(D.sampledSeconds(), 2.0);
}

//===----------------------------------------------------------------------===//
// Gmon file format
//===----------------------------------------------------------------------===//

namespace {

ProfileData makeSampleData() {
  ProfileData D;
  D.TicksPerSecond = 60;
  D.RunCount = 2;
  D.ArcTableOverflowed = false;
  D.Hist = Histogram(0x1000, 0x2000, 4);
  D.Hist.recordPc(0x1000);
  D.Hist.recordPc(0x1FFF);
  D.Hist.recordPc(0x1800);
  D.addArc(0x1010, 0x1100, 42);
  D.addArc(0x1020, 0x1100, 1);
  D.addArc(0, 0x1000, 1); // Spontaneous caller.
  return D;
}

} // namespace

TEST(GmonFileTest, RoundTrip) {
  ProfileData D = makeSampleData();
  auto Bytes = writeGmon(D);
  auto Back = readGmon(Bytes);
  ASSERT_TRUE(static_cast<bool>(Back));
  EXPECT_EQ(Back->TicksPerSecond, 60u);
  EXPECT_EQ(Back->RunCount, 2u);
  EXPECT_EQ(Back->Arcs.size(), 3u);
  EXPECT_EQ(Back->Hist.lowPc(), 0x1000u);
  EXPECT_EQ(Back->Hist.highPc(), 0x2000u);
  EXPECT_EQ(Back->Hist.bucketSize(), 4u);
  EXPECT_EQ(Back->Hist.totalSamples(), 3u);
  EXPECT_EQ(Back->callsInto(0x1100), 43u);
}

TEST(GmonFileTest, OverflowFlagPersists) {
  ProfileData D = makeSampleData();
  D.ArcTableOverflowed = true;
  auto Back = readGmon(writeGmon(D));
  ASSERT_TRUE(static_cast<bool>(Back));
  EXPECT_TRUE(Back->ArcTableOverflowed);
}

TEST(GmonFileTest, EmptyHistogramRoundTrips) {
  ProfileData D;
  D.addArc(1, 2, 3);
  auto Back = readGmon(writeGmon(D));
  ASSERT_TRUE(static_cast<bool>(Back));
  EXPECT_TRUE(Back->Hist.empty());
  EXPECT_EQ(Back->Arcs.size(), 1u);
}

TEST(GmonFileTest, BadMagicRejected) {
  auto Bytes = writeGmon(makeSampleData());
  Bytes[0] = 'X';
  auto Back = readGmon(Bytes);
  EXPECT_FALSE(static_cast<bool>(Back));
  EXPECT_NE(Back.message().find("magic"), std::string::npos);
  (void)Back.takeError();
}

TEST(GmonFileTest, BadVersionRejected) {
  auto Bytes = writeGmon(makeSampleData());
  Bytes[4] = 99;
  auto Back = readGmon(Bytes);
  EXPECT_FALSE(static_cast<bool>(Back));
  (void)Back.takeError();
}

TEST(GmonFileTest, TruncationRejected) {
  auto Bytes = writeGmon(makeSampleData());
  for (size_t Cut : {Bytes.size() - 1, Bytes.size() / 2, size_t(5)}) {
    std::vector<uint8_t> Short(Bytes.begin(), Bytes.begin() + Cut);
    auto Back = readGmon(Short);
    EXPECT_FALSE(static_cast<bool>(Back)) << "cut at " << Cut;
    (void)Back.takeError();
  }
}

TEST(GmonFileTest, TrailingGarbageRejected) {
  auto Bytes = writeGmon(makeSampleData());
  Bytes.push_back(0);
  auto Back = readGmon(Bytes);
  EXPECT_FALSE(static_cast<bool>(Back));
  (void)Back.takeError();
}

TEST(GmonFileTest, FileRoundTripAndSumming) {
  std::string P1 = testing::TempDir() + "/gmon_test_1.out";
  std::string P2 = testing::TempDir() + "/gmon_test_2.out";
  ProfileData D = makeSampleData();
  cantFail(writeGmonFile(P1, D));
  cantFail(writeGmonFile(P2, D));

  auto Sum = readAndSumGmonFiles({P1, P2});
  ASSERT_TRUE(static_cast<bool>(Sum));
  EXPECT_EQ(Sum->RunCount, 4u);
  EXPECT_EQ(Sum->Hist.totalSamples(), 6u);
  EXPECT_EQ(Sum->callsInto(0x1100), 86u);

  std::remove(P1.c_str());
  std::remove(P2.c_str());
}

TEST(GmonFileTest, SumAccumulatesRunsAcrossManyFiles) {
  // Regression: the runs counter must be the sum over every input, not
  // just the first pair.
  std::vector<std::string> Paths;
  uint32_t ExpectedRuns = 0;
  for (uint32_t Runs : {1u, 2u, 5u}) {
    ProfileData D = makeSampleData();
    D.RunCount = Runs;
    ExpectedRuns += Runs;
    std::string P = testing::TempDir() +
                    format("/gmon_runs_%u.out", Runs);
    cantFail(writeGmonFile(P, D));
    Paths.push_back(P);
  }
  auto Sum = readAndSumGmonFiles(Paths);
  ASSERT_TRUE(static_cast<bool>(Sum));
  EXPECT_EQ(Sum->RunCount, ExpectedRuns);
  EXPECT_EQ(Sum->Hist.totalSamples(), 9u); // 3 samples per file.
  for (const std::string &P : Paths)
    std::remove(P.c_str());
}

TEST(GmonFileTest, SumMismatchedRateNamesBothFiles) {
  std::string P1 = testing::TempDir() + "/gmon_rate_60.out";
  std::string P2 = testing::TempDir() + "/gmon_rate_100.out";
  ProfileData A = makeSampleData();
  ProfileData B = makeSampleData();
  B.TicksPerSecond = 100;
  cantFail(writeGmonFile(P1, A));
  cantFail(writeGmonFile(P2, B));

  auto Sum = readAndSumGmonFiles({P1, P2});
  ASSERT_FALSE(static_cast<bool>(Sum));
  EXPECT_NE(Sum.message().find(P1), std::string::npos) << Sum.message();
  EXPECT_NE(Sum.message().find(P2), std::string::npos) << Sum.message();
  EXPECT_NE(Sum.message().find("sampling rates"), std::string::npos);
  (void)Sum.takeError();
  std::remove(P1.c_str());
  std::remove(P2.c_str());
}

TEST(GmonFileTest, SumMismatchedHistogramNamesBothFiles) {
  std::string P1 = testing::TempDir() + "/gmon_hist_a.out";
  std::string P2 = testing::TempDir() + "/gmon_hist_b.out";
  ProfileData A = makeSampleData();
  ProfileData B = makeSampleData();
  B.Hist = Histogram(0x1000, 0x4000, 4); // Different [lowpc, highpc).
  cantFail(writeGmonFile(P1, A));
  cantFail(writeGmonFile(P2, B));

  auto Sum = readAndSumGmonFiles({P1, P2});
  ASSERT_FALSE(static_cast<bool>(Sum));
  EXPECT_NE(Sum.message().find(P1), std::string::npos) << Sum.message();
  EXPECT_NE(Sum.message().find(P2), std::string::npos) << Sum.message();
  EXPECT_NE(Sum.message().find("histograms"), std::string::npos)
      << Sum.message();
  (void)Sum.takeError();
  std::remove(P1.c_str());
  std::remove(P2.c_str());
}

//===----------------------------------------------------------------------===//
// Corrupted-input corpus: every mutation must produce an error, never a
// crash or a silent misparse.
//===----------------------------------------------------------------------===//

namespace {

/// Patches a little-endian u64 into \p Bytes at \p Offset.
void patchU64(std::vector<uint8_t> &Bytes, size_t Offset, uint64_t Value) {
  ASSERT_LE(Offset + 8, Bytes.size());
  for (size_t I = 0; I != 8; ++I)
    Bytes[Offset + I] = static_cast<uint8_t>(Value >> (8 * I));
}

// Fixed header layout (see docs/FORMATS.md): magic@0, version@4, hz@8,
// runs@16, flags@20, lowpc@21, highpc@29, bucketsize@37, nbuckets@45,
// counts@53.
constexpr size_t NbucketsOffset = 45;
constexpr size_t CountsOffset = 53;

} // namespace

TEST(GmonFileTest, CorpusTruncatedHeaders) {
  auto Bytes = writeGmon(makeSampleData());
  // Every prefix that cuts inside the header or the histogram lengths must
  // fail cleanly.
  for (size_t Cut = 0; Cut != CountsOffset + 8; ++Cut) {
    std::vector<uint8_t> Short(Bytes.begin(), Bytes.begin() + Cut);
    auto Back = readGmon(Short);
    EXPECT_FALSE(static_cast<bool>(Back)) << "header cut at " << Cut;
    (void)Back.takeError();
  }
}

TEST(GmonFileTest, CorpusOversizedNbuckets) {
  auto Valid = writeGmon(makeSampleData());
  // Larger than the plausibility cap, larger than the file, and the
  // all-ones pattern whose byte size would overflow.
  for (uint64_t Bad : std::initializer_list<uint64_t>{
           ~0ULL, 1ULL << 40, (1ULL << 30) / 8 + 1, Valid.size()}) {
    auto Bytes = Valid;
    patchU64(Bytes, NbucketsOffset, Bad);
    auto Back = readGmon(Bytes);
    EXPECT_FALSE(static_cast<bool>(Back)) << "nbuckets = " << Bad;
    (void)Back.takeError();
  }
  // A count that disagrees with the range must also be rejected, even if
  // the buckets would fit in the file.
  auto Bytes = Valid;
  ProfileData D = makeSampleData();
  patchU64(Bytes, NbucketsOffset, D.Hist.numBuckets() - 1);
  auto Back = readGmon(Bytes);
  EXPECT_FALSE(static_cast<bool>(Back));
  EXPECT_NE(Back.message().find("mismatch"), std::string::npos);
  (void)Back.takeError();
}

TEST(GmonFileTest, CorpusOversizedNarcs) {
  ProfileData D = makeSampleData();
  auto Valid = writeGmon(D);
  size_t NarcsOffset = CountsOffset + 8 * D.Hist.numBuckets();
  for (uint64_t Bad : std::initializer_list<uint64_t>{
           ~0ULL, 1ULL << 40, (1ULL << 30) / 8 + 1, 1000}) {
    auto Bytes = Valid;
    patchU64(Bytes, NarcsOffset, Bad);
    auto Back = readGmon(Bytes);
    EXPECT_FALSE(static_cast<bool>(Back)) << "narcs = " << Bad;
    (void)Back.takeError();
  }
}

TEST(GmonFileTest, CorpusTrailingGarbage) {
  auto Valid = writeGmon(makeSampleData());
  for (size_t Extra : {size_t(1), size_t(7), size_t(4096)}) {
    auto Bytes = Valid;
    Bytes.insert(Bytes.end(), Extra, 0xAB);
    auto Back = readGmon(Bytes);
    EXPECT_FALSE(static_cast<bool>(Back)) << Extra << " trailing bytes";
    EXPECT_NE(Back.message().find("trailing"), std::string::npos);
    (void)Back.takeError();
  }
}

TEST(GmonFileTest, CorpusArcTableTruncations) {
  ProfileData D = makeSampleData();
  auto Valid = writeGmon(D);
  size_t ArcsStart = CountsOffset + 8 * D.Hist.numBuckets() + 8;
  // Cut inside each arc record.
  for (size_t Cut = ArcsStart; Cut < Valid.size(); Cut += 5) {
    std::vector<uint8_t> Short(Valid.begin(), Valid.begin() + Cut);
    auto Back = readGmon(Short);
    EXPECT_FALSE(static_cast<bool>(Back)) << "arc cut at " << Cut;
    (void)Back.takeError();
  }
}

TEST(GmonFileTest, SumNoFilesFails) {
  auto Sum = readAndSumGmonFiles({});
  EXPECT_FALSE(static_cast<bool>(Sum));
  (void)Sum.takeError();
}

TEST(GmonFileTest, MergeCommutative) {
  SplitMix64 Rng(11);
  ProfileData A, B;
  A.Hist = Histogram(0, 1000, 8);
  B.Hist = Histogram(0, 1000, 8);
  for (int I = 0; I != 200; ++I) {
    A.Hist.recordPc(Rng.nextBelow(1000));
    B.Hist.recordPc(Rng.nextBelow(1000));
    A.addArc(Rng.nextBelow(50), Rng.nextBelow(50), 1 + Rng.nextBelow(5));
    B.addArc(Rng.nextBelow(50), Rng.nextBelow(50), 1 + Rng.nextBelow(5));
  }
  ProfileData AB = A, BA = B;
  cantFail(AB.merge(B));
  cantFail(BA.merge(A));
  EXPECT_EQ(AB.Hist.counts(), BA.Hist.counts());
  for (const ArcRecord &R : AB.Arcs) {
    // Same (from, self) totals in both orders.
    uint64_t Other = 0;
    for (const ArcRecord &S : BA.Arcs)
      if (S.FromPc == R.FromPc && S.SelfPc == R.SelfPc)
        Other = S.Count;
    EXPECT_EQ(R.Count, Other);
  }
}
