//===- tests/gmon_test.cpp - Unit tests for the profile data model --------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "gmon/GmonFile.h"
#include "gmon/Histogram.h"
#include "gmon/ProfileData.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace gprof;

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

TEST(HistogramTest, BucketGeometry) {
  Histogram H(100, 200, 10);
  EXPECT_EQ(H.numBuckets(), 10u);
  EXPECT_EQ(H.bucketStart(0), 100u);
  EXPECT_EQ(H.bucketEnd(0), 110u);
  EXPECT_EQ(H.bucketStart(9), 190u);
  EXPECT_EQ(H.bucketEnd(9), 200u);
}

TEST(HistogramTest, PartialFinalBucket) {
  Histogram H(0, 25, 10);
  EXPECT_EQ(H.numBuckets(), 3u);
  EXPECT_EQ(H.bucketEnd(2), 25u); // Clamped.
}

TEST(HistogramTest, RecordInRange) {
  Histogram H(100, 200, 10);
  H.recordPc(100);
  H.recordPc(109);
  H.recordPc(110);
  H.recordPc(199);
  EXPECT_EQ(H.bucketCount(0), 2u);
  EXPECT_EQ(H.bucketCount(1), 1u);
  EXPECT_EQ(H.bucketCount(9), 1u);
  EXPECT_EQ(H.totalSamples(), 4u);
  EXPECT_EQ(H.outOfRangeSamples(), 0u);
}

TEST(HistogramTest, OutOfRangeCountedSeparately) {
  Histogram H(100, 200, 10);
  H.recordPc(99);
  H.recordPc(200);
  H.recordPc(5000);
  EXPECT_EQ(H.totalSamples(), 0u);
  EXPECT_EQ(H.outOfRangeSamples(), 3u);
}

TEST(HistogramTest, OneToOneGranularity) {
  // The retrospective's epiphany: bucket size 1 gives a full count per PC.
  Histogram H(0, 100, 1);
  EXPECT_EQ(H.numBuckets(), 100u);
  for (int I = 0; I != 5; ++I)
    H.recordPc(42);
  EXPECT_EQ(H.bucketCount(42), 5u);
}

TEST(HistogramTest, MergeAddsBuckets) {
  Histogram A(0, 100, 10), B(0, 100, 10);
  A.recordPc(5);
  B.recordPc(5);
  B.recordPc(95);
  cantFail(A.merge(B));
  EXPECT_EQ(A.bucketCount(0), 2u);
  EXPECT_EQ(A.bucketCount(9), 1u);
}

TEST(HistogramTest, MergeRejectsMismatchedRanges) {
  Histogram A(0, 100, 10), B(0, 200, 10);
  Error E = A.merge(B);
  EXPECT_TRUE(static_cast<bool>(E));
  Histogram C(0, 100, 20);
  Error E2 = A.merge(C);
  EXPECT_TRUE(static_cast<bool>(E2));
}

TEST(HistogramTest, EmptyMergesWithEmpty) {
  Histogram A, B;
  cantFail(A.merge(B));
  EXPECT_TRUE(A.empty());
}

//===----------------------------------------------------------------------===//
// ProfileData
//===----------------------------------------------------------------------===//

TEST(ProfileDataTest, AddArcMerges) {
  ProfileData D;
  D.addArc(10, 20, 1);
  D.addArc(10, 20, 2);
  D.addArc(10, 30, 5);
  ASSERT_EQ(D.Arcs.size(), 2u);
  EXPECT_EQ(D.Arcs[0].Count, 3u);
  EXPECT_EQ(D.callsInto(20), 3u);
  EXPECT_EQ(D.callsInto(30), 5u);
  EXPECT_EQ(D.callsInto(99), 0u);
}

TEST(ProfileDataTest, MergeSumsRunsAndArcs) {
  ProfileData A, B;
  A.Hist = Histogram(0, 100, 1);
  B.Hist = Histogram(0, 100, 1);
  A.Hist.recordPc(1);
  B.Hist.recordPc(1);
  A.addArc(5, 6, 7);
  B.addArc(5, 6, 3);
  B.addArc(8, 9, 1);
  B.ArcTableOverflowed = true;
  cantFail(A.merge(B));
  EXPECT_EQ(A.RunCount, 2u);
  EXPECT_EQ(A.Hist.bucketCount(1), 2u);
  EXPECT_EQ(A.callsInto(6), 10u);
  EXPECT_EQ(A.callsInto(9), 1u);
  EXPECT_TRUE(A.ArcTableOverflowed);
}

TEST(ProfileDataTest, MergeRejectsDifferentRates) {
  ProfileData A, B;
  A.TicksPerSecond = 60;
  B.TicksPerSecond = 100;
  Error E = A.merge(B);
  EXPECT_TRUE(static_cast<bool>(E));
}

TEST(ProfileDataTest, SampledSeconds) {
  ProfileData D;
  D.TicksPerSecond = 60;
  D.Hist = Histogram(0, 10, 1);
  for (int I = 0; I != 120; ++I)
    D.Hist.recordPc(3);
  EXPECT_DOUBLE_EQ(D.sampledSeconds(), 2.0);
}

//===----------------------------------------------------------------------===//
// Gmon file format
//===----------------------------------------------------------------------===//

namespace {

ProfileData makeSampleData() {
  ProfileData D;
  D.TicksPerSecond = 60;
  D.RunCount = 2;
  D.ArcTableOverflowed = false;
  D.Hist = Histogram(0x1000, 0x2000, 4);
  D.Hist.recordPc(0x1000);
  D.Hist.recordPc(0x1FFF);
  D.Hist.recordPc(0x1800);
  D.addArc(0x1010, 0x1100, 42);
  D.addArc(0x1020, 0x1100, 1);
  D.addArc(0, 0x1000, 1); // Spontaneous caller.
  return D;
}

} // namespace

TEST(GmonFileTest, RoundTrip) {
  ProfileData D = makeSampleData();
  auto Bytes = writeGmon(D);
  auto Back = readGmon(Bytes);
  ASSERT_TRUE(static_cast<bool>(Back));
  EXPECT_EQ(Back->TicksPerSecond, 60u);
  EXPECT_EQ(Back->RunCount, 2u);
  EXPECT_EQ(Back->Arcs.size(), 3u);
  EXPECT_EQ(Back->Hist.lowPc(), 0x1000u);
  EXPECT_EQ(Back->Hist.highPc(), 0x2000u);
  EXPECT_EQ(Back->Hist.bucketSize(), 4u);
  EXPECT_EQ(Back->Hist.totalSamples(), 3u);
  EXPECT_EQ(Back->callsInto(0x1100), 43u);
}

TEST(GmonFileTest, OverflowFlagPersists) {
  ProfileData D = makeSampleData();
  D.ArcTableOverflowed = true;
  auto Back = readGmon(writeGmon(D));
  ASSERT_TRUE(static_cast<bool>(Back));
  EXPECT_TRUE(Back->ArcTableOverflowed);
}

TEST(GmonFileTest, EmptyHistogramRoundTrips) {
  ProfileData D;
  D.addArc(1, 2, 3);
  auto Back = readGmon(writeGmon(D));
  ASSERT_TRUE(static_cast<bool>(Back));
  EXPECT_TRUE(Back->Hist.empty());
  EXPECT_EQ(Back->Arcs.size(), 1u);
}

TEST(GmonFileTest, BadMagicRejected) {
  auto Bytes = writeGmon(makeSampleData());
  Bytes[0] = 'X';
  auto Back = readGmon(Bytes);
  EXPECT_FALSE(static_cast<bool>(Back));
  EXPECT_NE(Back.message().find("magic"), std::string::npos);
  (void)Back.takeError();
}

TEST(GmonFileTest, BadVersionRejected) {
  auto Bytes = writeGmon(makeSampleData());
  Bytes[4] = 99;
  auto Back = readGmon(Bytes);
  EXPECT_FALSE(static_cast<bool>(Back));
  (void)Back.takeError();
}

TEST(GmonFileTest, TruncationRejected) {
  auto Bytes = writeGmon(makeSampleData());
  for (size_t Cut : {Bytes.size() - 1, Bytes.size() / 2, size_t(5)}) {
    std::vector<uint8_t> Short(Bytes.begin(), Bytes.begin() + Cut);
    auto Back = readGmon(Short);
    EXPECT_FALSE(static_cast<bool>(Back)) << "cut at " << Cut;
    (void)Back.takeError();
  }
}

TEST(GmonFileTest, TrailingGarbageRejected) {
  auto Bytes = writeGmon(makeSampleData());
  Bytes.push_back(0);
  auto Back = readGmon(Bytes);
  EXPECT_FALSE(static_cast<bool>(Back));
  (void)Back.takeError();
}

TEST(GmonFileTest, FileRoundTripAndSumming) {
  std::string P1 = testing::TempDir() + "/gmon_test_1.out";
  std::string P2 = testing::TempDir() + "/gmon_test_2.out";
  ProfileData D = makeSampleData();
  cantFail(writeGmonFile(P1, D));
  cantFail(writeGmonFile(P2, D));

  auto Sum = readAndSumGmonFiles({P1, P2});
  ASSERT_TRUE(static_cast<bool>(Sum));
  EXPECT_EQ(Sum->RunCount, 4u);
  EXPECT_EQ(Sum->Hist.totalSamples(), 6u);
  EXPECT_EQ(Sum->callsInto(0x1100), 86u);

  std::remove(P1.c_str());
  std::remove(P2.c_str());
}

TEST(GmonFileTest, SumNoFilesFails) {
  auto Sum = readAndSumGmonFiles({});
  EXPECT_FALSE(static_cast<bool>(Sum));
  (void)Sum.takeError();
}

TEST(GmonFileTest, MergeCommutative) {
  SplitMix64 Rng(11);
  ProfileData A, B;
  A.Hist = Histogram(0, 1000, 8);
  B.Hist = Histogram(0, 1000, 8);
  for (int I = 0; I != 200; ++I) {
    A.Hist.recordPc(Rng.nextBelow(1000));
    B.Hist.recordPc(Rng.nextBelow(1000));
    A.addArc(Rng.nextBelow(50), Rng.nextBelow(50), 1 + Rng.nextBelow(5));
    B.addArc(Rng.nextBelow(50), Rng.nextBelow(50), 1 + Rng.nextBelow(5));
  }
  ProfileData AB = A, BA = B;
  cantFail(AB.merge(B));
  cantFail(BA.merge(A));
  EXPECT_EQ(AB.Hist.counts(), BA.Hist.counts());
  for (const ArcRecord &R : AB.Arcs) {
    // Same (from, self) totals in both orders.
    uint64_t Other = 0;
    for (const ArcRecord &S : BA.Arcs)
      if (S.FromPc == R.FromPc && S.SelfPc == R.SelfPc)
        Other = S.Count;
    EXPECT_EQ(R.Count, Other);
  }
}
