//===- tests/dot_filter_test.cpp - DOT export and -E time exclusion -------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "core/Analyzer.h"
#include "core/DotExporter.h"
#include "core/FlatPrinter.h"
#include "core/SyntheticProfile.h"
#include "support/Format.h"

#include <gtest/gtest.h>

using namespace gprof;

namespace {

ProfileReport analyzeBuilder(const SyntheticProfileBuilder &B,
                             AnalyzerOptions Opts = {}) {
  auto In = B.build();
  Analyzer A(std::move(In.Syms), std::move(Opts));
  A.setStaticArcs(In.StaticArcs);
  return cantFail(A.analyze(In.Data));
}

/// main -> {hot, warm}; hot -> helper; a static arc main -> cold; and a
/// self-recursive cycle pair x <-> y under warm.
ProfileReport richReport(AnalyzerOptions Opts = {}) {
  SyntheticProfileBuilder B(100);
  uint32_t Main = B.addFunction("main");
  uint32_t Hot = B.addFunction("hot");
  uint32_t Warm = B.addFunction("warm");
  uint32_t Helper = B.addFunction("helper");
  uint32_t Cold = B.addFunction("cold");
  uint32_t X = B.addFunction("cx");
  uint32_t Y = B.addFunction("cy");
  B.addSpontaneous(Main);
  B.addCall(Main, Hot, 10);
  B.addCall(Main, Warm, 5);
  B.addCall(Hot, Helper, 100);
  B.addCall(Hot, Hot, 3);
  B.addStaticArc(Main, Cold);
  B.addCall(Warm, X, 2);
  B.addCall(X, Y, 7);
  B.addCall(Y, X, 6);
  B.setSelfSeconds(Hot, 4.0);
  B.setSelfSeconds(Helper, 3.0);
  B.setSelfSeconds(Warm, 1.0);
  B.setSelfSeconds(X, 0.5);
  B.setSelfSeconds(Y, 0.5);
  Opts.UseStaticArcs = true;
  return analyzeBuilder(B, Opts);
}

} // namespace

//===----------------------------------------------------------------------===//
// DOT export
//===----------------------------------------------------------------------===//

TEST(DotExporterTest, StructureOfOutput) {
  std::string Dot = exportDot(richReport());
  EXPECT_EQ(Dot.rfind("digraph callgraph {", 0), 0u);
  EXPECT_EQ(Dot.back(), '\n');
  EXPECT_NE(Dot.find("}\n"), std::string::npos);
  // Every executed routine appears as a node with times in the label.
  for (const char *Name : {"main", "hot", "warm", "helper", "cx", "cy"})
    EXPECT_NE(Dot.find(format("\"%s\" [label=", Name)), std::string::npos)
        << Name;
}

TEST(DotExporterTest, ArcsRendered) {
  std::string Dot = exportDot(richReport());
  EXPECT_NE(Dot.find("\"main\" -> \"hot\""), std::string::npos);
  EXPECT_NE(Dot.find("label=\"100\""), std::string::npos); // hot->helper
  // The static arc is dashed with count 0.
  size_t StaticArc = Dot.find("\"main\" -> \"cold\"");
  ASSERT_NE(StaticArc, std::string::npos);
  EXPECT_NE(Dot.find("style=dashed", StaticArc), std::string::npos);
  // Self-recursion appears as a loop.
  EXPECT_NE(Dot.find("\"hot\" -> \"hot\""), std::string::npos);
}

TEST(DotExporterTest, CycleCluster) {
  std::string Dot = exportDot(richReport());
  size_t Cluster = Dot.find("subgraph cluster_cycle1");
  ASSERT_NE(Cluster, std::string::npos);
  size_t ClusterEnd = Dot.find("}", Cluster);
  std::string Inside = Dot.substr(Cluster, ClusterEnd - Cluster);
  EXPECT_NE(Inside.find("\"cx\""), std::string::npos);
  EXPECT_NE(Inside.find("\"cy\""), std::string::npos);
}

TEST(DotExporterTest, HotFunctionFilter) {
  DotOptions Opts;
  Opts.MinTotalFraction = 0.3; // Keep only routines with >=30% of time.
  std::string Dot = exportDot(richReport(), Opts);
  EXPECT_NE(Dot.find("\"hot\" [label"), std::string::npos);
  EXPECT_NE(Dot.find("\"main\" [label"), std::string::npos);
  // warm's subtree (2.0s of 9.0s ≈ 22%) is filtered out.
  EXPECT_EQ(Dot.find("\"warm\" [label"), std::string::npos);
  EXPECT_EQ(Dot.find("\"cx\""), std::string::npos);
  // Arcs touching filtered nodes vanish with them.
  EXPECT_EQ(Dot.find("-> \"warm\""), std::string::npos);
}

TEST(DotExporterTest, StaticOnlyNodesToggle) {
  DotOptions NoStatic;
  NoStatic.IncludeStatic = false;
  std::string Dot = exportDot(richReport(), NoStatic);
  EXPECT_EQ(Dot.find("\"cold\""), std::string::npos);
  std::string DotWith = exportDot(richReport());
  EXPECT_NE(DotWith.find("\"cold\""), std::string::npos);
}

TEST(DotExporterTest, NamesEscaped) {
  SyntheticProfileBuilder B(100);
  uint32_t Main = B.addFunction("we\"ird\\name");
  B.addSpontaneous(Main);
  B.setSelfSeconds(Main, 1.0);
  std::string Dot = exportDot(analyzeBuilder(B));
  EXPECT_NE(Dot.find("we\\\"ird\\\\name"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// -E time exclusion
//===----------------------------------------------------------------------===//

TEST(ExcludeTimeTest, TimeRemovedEverywhere) {
  AnalyzerOptions Opts;
  Opts.ExcludeTimeOf = {"helper"};
  ProfileReport R = richReport(Opts);

  uint32_t Helper = R.findFunction("helper");
  uint32_t Hot = R.findFunction("hot");
  uint32_t Main = R.findFunction("main");
  // helper keeps its call counts but loses its time.
  EXPECT_EQ(R.Functions[Helper].Calls, 100u);
  EXPECT_EQ(R.Functions[Helper].SelfTime, 0.0);
  EXPECT_NEAR(R.ExcludedTime, 3.0, 1e-9);
  // hot no longer inherits helper's 3 seconds.
  EXPECT_NEAR(R.Functions[Hot].ChildTime, 0.0, 1e-9);
  // The total shrinks accordingly: 9.0 - 3.0.
  EXPECT_NEAR(R.TotalTime, 6.0, 1e-9);
  // main still inherits everything that remains.
  EXPECT_NEAR(R.Functions[Main].totalTime(), 6.0, 1e-9);
}

TEST(ExcludeTimeTest, PercentagesRebased) {
  AnalyzerOptions Opts;
  Opts.ExcludeTimeOf = {"helper"};
  ProfileReport R = richReport(Opts);
  uint32_t Hot = R.findFunction("hot");
  // hot: 4.0 of 6.0 = 66.7% after exclusion (was 4.0+3.0 of 9.0).
  EXPECT_NEAR(R.Functions[Hot].totalTime() / R.TotalTime, 4.0 / 6.0,
              1e-9);
  std::string Flat = printFlatProfile(R);
  EXPECT_NE(Flat.find("excluded from the analysis"), std::string::npos);
}

TEST(ExcludeTimeTest, UnknownNameFails) {
  SyntheticProfileBuilder B(100);
  uint32_t Main = B.addFunction("main");
  B.addSpontaneous(Main);
  auto In = B.build();
  AnalyzerOptions Opts;
  Opts.ExcludeTimeOf = {"ghost"};
  Analyzer A(std::move(In.Syms), Opts);
  auto R = A.analyze(In.Data);
  EXPECT_FALSE(static_cast<bool>(R));
  (void)R.takeError();
}

TEST(ExcludeTimeTest, ExcludingCycleMemberShrinksCycle) {
  AnalyzerOptions Opts;
  Opts.ExcludeTimeOf = {"cx"};
  ProfileReport R = richReport(Opts);
  ASSERT_EQ(R.Cycles.size(), 1u);
  // Cycle self time is cy's 0.5 only.
  EXPECT_NEAR(R.Cycles[0].SelfTime, 0.5, 1e-9);
}
