//===- tests/lang_test.cpp - Unit tests for the TL front end --------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "lang/Diagnostics.h"
#include "lang/Lexer.h"
#include "lang/Parser.h"
#include "lang/Sema.h"

#include <gtest/gtest.h>

using namespace gprof;

namespace {

std::vector<Token> lex(std::string_view Src, DiagnosticEngine &Diags) {
  Lexer L(Src, Diags);
  return L.lexAll();
}

std::vector<Token> lexOk(std::string_view Src) {
  DiagnosticEngine Diags;
  auto Tokens = lex(Src, Diags);
  EXPECT_FALSE(Diags.hasErrors());
  return Tokens;
}

/// Parses and runs Sema, expecting success.
Program compileOk(std::string_view Src) {
  DiagnosticEngine Diags;
  Program P = parseTL(Src, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.renderAll("<test>");
  bool Ok = analyze(P, Diags);
  EXPECT_TRUE(Ok) << Diags.renderAll("<test>");
  return P;
}

/// Parses and runs Sema, expecting at least one error containing
/// \p Needle.
void expectError(std::string_view Src, const std::string &Needle) {
  DiagnosticEngine Diags;
  Program P = parseTL(Src, Diags);
  if (!Diags.hasErrors())
    analyze(P, Diags);
  ASSERT_TRUE(Diags.hasErrors()) << "expected an error matching: " << Needle;
  EXPECT_NE(Diags.renderAll("<test>").find(Needle), std::string::npos)
      << Diags.renderAll("<test>");
}

} // namespace

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

TEST(LexerTest, EmptyInputYieldsEOF) {
  auto Tokens = lexOk("");
  ASSERT_EQ(Tokens.size(), 1u);
  EXPECT_TRUE(Tokens[0].is(TokenKind::EndOfFile));
}

TEST(LexerTest, KeywordsAndIdentifiers) {
  auto Tokens = lexOk("fn var if else while return print foo _bar x9");
  ASSERT_EQ(Tokens.size(), 11u);
  EXPECT_TRUE(Tokens[0].is(TokenKind::KwFn));
  EXPECT_TRUE(Tokens[1].is(TokenKind::KwVar));
  EXPECT_TRUE(Tokens[2].is(TokenKind::KwIf));
  EXPECT_TRUE(Tokens[3].is(TokenKind::KwElse));
  EXPECT_TRUE(Tokens[4].is(TokenKind::KwWhile));
  EXPECT_TRUE(Tokens[5].is(TokenKind::KwReturn));
  EXPECT_TRUE(Tokens[6].is(TokenKind::KwPrint));
  EXPECT_TRUE(Tokens[7].is(TokenKind::Identifier));
  EXPECT_EQ(Tokens[7].Text, "foo");
  EXPECT_EQ(Tokens[8].Text, "_bar");
  EXPECT_EQ(Tokens[9].Text, "x9");
}

TEST(LexerTest, NumbersAndOperators) {
  auto Tokens = lexOk("1 + 23 * 456 == 7 && 8 || 9 != 0");
  EXPECT_TRUE(Tokens[0].is(TokenKind::Number));
  EXPECT_EQ(Tokens[0].Value, 1);
  EXPECT_TRUE(Tokens[1].is(TokenKind::Plus));
  EXPECT_EQ(Tokens[2].Value, 23);
  EXPECT_TRUE(Tokens[3].is(TokenKind::Star));
  EXPECT_EQ(Tokens[4].Value, 456);
  EXPECT_TRUE(Tokens[5].is(TokenKind::EqualEqual));
  EXPECT_TRUE(Tokens[7].is(TokenKind::AmpAmp));
  EXPECT_TRUE(Tokens[9].is(TokenKind::PipePipe));
  EXPECT_TRUE(Tokens[11].is(TokenKind::BangEqual));
}

TEST(LexerTest, TwoCharOperatorsDistinctFromOneChar) {
  auto Tokens = lexOk("< <= > >= = == ! != & &&");
  EXPECT_TRUE(Tokens[0].is(TokenKind::Less));
  EXPECT_TRUE(Tokens[1].is(TokenKind::LessEqual));
  EXPECT_TRUE(Tokens[2].is(TokenKind::Greater));
  EXPECT_TRUE(Tokens[3].is(TokenKind::GreaterEqual));
  EXPECT_TRUE(Tokens[4].is(TokenKind::Assign));
  EXPECT_TRUE(Tokens[5].is(TokenKind::EqualEqual));
  EXPECT_TRUE(Tokens[6].is(TokenKind::Bang));
  EXPECT_TRUE(Tokens[7].is(TokenKind::BangEqual));
  EXPECT_TRUE(Tokens[8].is(TokenKind::Amp));
  EXPECT_TRUE(Tokens[9].is(TokenKind::AmpAmp));
}

TEST(LexerTest, CommentsSkipped) {
  auto Tokens = lexOk("1 // a comment\n2");
  ASSERT_EQ(Tokens.size(), 3u);
  EXPECT_EQ(Tokens[0].Value, 1);
  EXPECT_EQ(Tokens[1].Value, 2);
}

TEST(LexerTest, LocationsTracked) {
  auto Tokens = lexOk("a\n  b");
  EXPECT_EQ(Tokens[0].Loc.Line, 1u);
  EXPECT_EQ(Tokens[0].Loc.Column, 1u);
  EXPECT_EQ(Tokens[1].Loc.Line, 2u);
  EXPECT_EQ(Tokens[1].Loc.Column, 3u);
}

TEST(LexerTest, BadCharacterDiagnosed) {
  DiagnosticEngine Diags;
  auto Tokens = lex("a $ b", Diags);
  EXPECT_TRUE(Diags.hasErrors());
  // Lexing continues past the error.
  ASSERT_EQ(Tokens.size(), 3u);
  EXPECT_EQ(Tokens[1].Text, "b");
}

TEST(LexerTest, SinglePipeDiagnosed) {
  DiagnosticEngine Diags;
  lex("a | b", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(LexerTest, HugeLiteralDiagnosed) {
  DiagnosticEngine Diags;
  lex("99999999999999999999999999", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

TEST(ParserTest, MinimalProgram) {
  Program P = compileOk("fn main() { return 0; }");
  ASSERT_EQ(P.Functions.size(), 1u);
  EXPECT_EQ(P.Functions[0].Name, "main");
  EXPECT_TRUE(P.Functions[0].Params.empty());
}

TEST(ParserTest, ParamsAndGlobals) {
  Program P = compileOk(R"(
    var counter = 5;
    var negative = -3;
    fn add(a, b) { return a + b; }
    fn main() { return add(counter, negative); }
  )");
  ASSERT_EQ(P.Globals.size(), 2u);
  EXPECT_EQ(P.Globals[0].InitValue, 5);
  EXPECT_EQ(P.Globals[1].InitValue, -3);
  ASSERT_EQ(P.Functions.size(), 2u);
  EXPECT_EQ(P.Functions[0].Params.size(), 2u);
}

TEST(ParserTest, PrecedenceShape) {
  // 1 + 2 * 3 must parse as 1 + (2 * 3).
  Program P = compileOk("fn main() { return 1 + 2 * 3; }");
  const auto &Body = P.Functions[0].Body->Body;
  ASSERT_EQ(Body.size(), 1u);
  const auto &Ret = static_cast<const ReturnStmt &>(*Body[0]);
  const auto &Add = static_cast<const BinaryExpr &>(*Ret.Value);
  EXPECT_EQ(Add.Op, BinaryOp::Add);
  EXPECT_EQ(Add.LHS->kind(), ExprKind::IntLiteral);
  EXPECT_EQ(Add.RHS->kind(), ExprKind::Binary);
  EXPECT_EQ(static_cast<const BinaryExpr &>(*Add.RHS).Op, BinaryOp::Mul);
}

TEST(ParserTest, IfElseChain) {
  compileOk(R"(
    fn main() {
      var x = 3;
      if (x < 1) { x = 1; }
      else if (x < 2) { x = 2; }
      else { x = 3; }
      return x;
    }
  )");
}

TEST(ParserTest, FunctionValueSyntax) {
  Program P = compileOk(R"(
    fn f(x) { return x; }
    fn main() {
      var g = &f;
      return g(3);
    }
  )");
  // Indirect call: the callee expression is a local, not a function name.
  ASSERT_EQ(P.Functions.size(), 2u);
}

TEST(ParserTest, MissingSemicolonDiagnosed) {
  expectError("fn main() { return 0 }", "expected ';'");
}

TEST(ParserTest, UnbalancedBraceDiagnosed) {
  expectError("fn main() { return 0;", "expected '}'");
}

TEST(ParserTest, TopLevelJunkDiagnosed) {
  expectError("42 fn main() { return 0; }", "expected 'fn' or 'var'");
}

TEST(ParserTest, RecoveryProducesMultipleErrors) {
  DiagnosticEngine Diags;
  parseTL(R"(
    fn f( { return 0; }
    fn g() { var = 3; }
    fn main() { return 0; }
  )",
          Diags);
  EXPECT_GE(Diags.errorCount(), 2u);
}

TEST(ParserTest, GlobalInitializerMustBeConstant) {
  expectError("var x = y; fn main() { return 0; }", "constant");
}

//===----------------------------------------------------------------------===//
// Sema
//===----------------------------------------------------------------------===//

TEST(SemaTest, LocalsResolveToSlots) {
  Program P = compileOk(R"(
    fn f(a, b) {
      var c = a;
      return b + c;
    }
    fn main() { return f(1, 2); }
  )");
  const FunctionDecl &F = P.Functions[0];
  EXPECT_EQ(F.NumSlots, 3u); // a, b, c.
}

TEST(SemaTest, SiblingScopesReuseSlots) {
  Program P = compileOk(R"(
    fn f() {
      if (1) { var a = 1; print a; }
      if (1) { var b = 2; print b; }
      return 0;
    }
    fn main() { return f(); }
  )");
  EXPECT_EQ(P.Functions[0].NumSlots, 1u); // a and b share slot 0.
}

TEST(SemaTest, ShadowingAllowedAcrossScopes) {
  compileOk(R"(
    fn f(x) {
      if (x) { var x = 2; print x; }
      return x;
    }
    fn main() { return f(1); }
  )");
}

TEST(SemaTest, UndeclaredNameDiagnosed) {
  expectError("fn main() { return nope; }", "undeclared name 'nope'");
}

TEST(SemaTest, DuplicateFunctionDiagnosed) {
  expectError("fn f() { return 0; } fn f() { return 1; } "
              "fn main() { return 0; }",
              "redefinition of function 'f'");
}

TEST(SemaTest, DuplicateGlobalDiagnosed) {
  expectError("var x; var x; fn main() { return 0; }",
              "redefinition of global");
}

TEST(SemaTest, DuplicateParamDiagnosed) {
  expectError("fn f(a, a) { return a; } fn main() { return 0; }",
              "duplicate parameter");
}

TEST(SemaTest, RedeclaredLocalDiagnosed) {
  expectError("fn main() { var a = 1; var a = 2; return a; }",
              "redeclaration of variable 'a'");
}

TEST(SemaTest, MissingMainDiagnosed) {
  expectError("fn f() { return 0; }", "no 'main' function");
}

TEST(SemaTest, MainWithParamsDiagnosed) {
  expectError("fn main(x) { return x; }", "'main' must take no parameters");
}

TEST(SemaTest, DirectCallArityChecked) {
  expectError("fn f(a) { return a; } fn main() { return f(1, 2); }",
              "call to 'f' with 2 arguments; it takes 1");
}

TEST(SemaTest, AssignToFunctionDiagnosed) {
  expectError("fn f() { return 0; } fn main() { f = 3; return 0; }",
              "cannot assign to function 'f'");
}

TEST(SemaTest, AddressOfNonFunctionDiagnosed) {
  expectError("var g; fn main() { var p = &g; return p; }",
              "does not name a function");
}

TEST(SemaTest, DirectCallsMarked) {
  Program P = compileOk(R"(
    fn f() { return 1; }
    fn main() {
      var g = &f;
      return f() + g();
    }
  )");
  // Dig out the return expression of main: f() is direct, g() is not.
  const FunctionDecl &Main = P.Functions[1];
  const auto &Ret = static_cast<const ReturnStmt &>(*Main.Body->Body[1]);
  const auto &Add = static_cast<const BinaryExpr &>(*Ret.Value);
  const auto &Direct = static_cast<const CallExpr &>(*Add.LHS);
  const auto &Indirect = static_cast<const CallExpr &>(*Add.RHS);
  EXPECT_TRUE(Direct.IsDirect);
  EXPECT_FALSE(Indirect.IsDirect);
}

TEST(SemaTest, GlobalsResolve) {
  Program P = compileOk(R"(
    var g = 7;
    fn main() { g = g + 1; return g; }
  )");
  (void)P;
}

TEST(SemaTest, BuiltinShadowedByLocalIsOrdinaryCall) {
  // A local named 'peek' shadows the built-in; the call becomes an
  // indirect call through the variable (checked at run time), so Sema
  // accepts it.
  compileOk("fn main() { var peek = 5; "
            "if (0) { return peek(1); } return peek; }");
}

TEST(SemaTest, BuiltinNotAValue) {
  expectError("fn main() { var p = peek; return 0; }",
              "built-in 'peek' can only be called");
  expectError("fn main() { var p = &poke; return 0; }",
              "does not name a function");
}

TEST(SemaTest, BuiltinArityErrors) {
  expectError("fn main() { return poke(1); }", "'poke' takes 2 arguments");
  expectError("fn main() { return peek(); }", "'peek' takes 1 argument");
}

TEST(SemaTest, DiagnosticRendering) {
  DiagnosticEngine Diags;
  Diags.error({3, 7}, "something bad");
  Diags.warning({1, 1}, "looks odd");
  std::string Out = Diags.renderAll("file.tl");
  EXPECT_NE(Out.find("file.tl:3:7: error: something bad"),
            std::string::npos);
  EXPECT_NE(Out.find("file.tl:1:1: warning: looks odd"), std::string::npos);
}
