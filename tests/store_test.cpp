//===- tests/store_test.cpp - Profile store, merge engine, pool, digests --===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the profile repository subsystem: SHA-256 known-answer
/// vectors, ThreadPool behavior, canonical form, merge determinism across
/// thread counts and shard orders, the aggregate cache (hit / miss / gc
/// invalidation), and store compatibility validation at ingest.
///
//===----------------------------------------------------------------------===//

#include "gmon/GmonFile.h"
#include "store/MergeEngine.h"
#include "store/ProfileStore.h"
#include "support/FileUtils.h"
#include "support/Random.h"
#include "support/Sha256.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <mutex>
#include <numeric>
#include <set>
#include <string>
#include <thread>
#include <unistd.h>

using namespace gprof;

namespace {

/// A fresh store root under the test temp dir, removed on destruction.
/// The pid keeps concurrent ctest entries that re-run the same case
/// (the named smoke targets) from sweeping each other's trees.
struct TempStoreDir {
  explicit TempStoreDir(const std::string &Name)
      : Path(testing::TempDir() + "/gprof_store_" +
             std::to_string(::getpid()) + "_" + Name) {
    std::filesystem::remove_all(Path);
  }
  ~TempStoreDir() { std::filesystem::remove_all(Path); }
  std::string Path;
};

/// Builds one synthetic shard with the shared geometry and seed-dependent
/// contents.
ProfileData makeShard(uint64_t Seed) {
  SplitMix64 Rng(Seed);
  ProfileData D;
  D.TicksPerSecond = 60;
  D.Hist = Histogram(0x1000, 0x3000, 8);
  for (int I = 0; I != 64; ++I)
    D.Hist.recordPc(0x1000 + Rng.nextBelow(0x2000));
  for (int I = 0; I != 32; ++I)
    D.addArc(0x1000 + Rng.nextBelow(64) * 8, 0x1000 + Rng.nextBelow(16) * 128,
             1 + Rng.nextBelow(9));
  return D;
}

std::vector<ProfileData> makeShards(size_t N, uint64_t Seed) {
  std::vector<ProfileData> Shards;
  for (size_t I = 0; I != N; ++I) {
    ProfileData D = makeShard(Seed + I);
    canonicalizeProfile(D);
    Shards.push_back(std::move(D));
  }
  return Shards;
}

/// Deterministic Fisher-Yates shuffle.
template <typename T> void shuffle(std::vector<T> &V, uint64_t Seed) {
  SplitMix64 Rng(Seed);
  for (size_t I = V.size(); I > 1; --I)
    std::swap(V[I - 1], V[Rng.nextBelow(I)]);
}

} // namespace

//===----------------------------------------------------------------------===//
// Sha256
//===----------------------------------------------------------------------===//

TEST(Sha256Test, KnownAnswerVectors) {
  // FIPS 180-4 test vectors.
  EXPECT_EQ(digestToHex(Sha256::hash(nullptr, 0)),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  const char *Abc = "abc";
  EXPECT_EQ(digestToHex(Sha256::hash(
                reinterpret_cast<const uint8_t *>(Abc), 3)),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  const char *Two = "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
  EXPECT_EQ(digestToHex(Sha256::hash(
                reinterpret_cast<const uint8_t *>(Two), 56)),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  SplitMix64 Rng(7);
  std::vector<uint8_t> Bytes(100000);
  for (uint8_t &B : Bytes)
    B = static_cast<uint8_t>(Rng.next());
  Sha256 H;
  // Uneven chunking crosses block boundaries in every alignment.
  size_t Pos = 0;
  for (size_t Chunk = 1; Pos < Bytes.size(); Chunk = Chunk * 3 + 1) {
    size_t Take = std::min(Chunk, Bytes.size() - Pos);
    H.update(Bytes.data() + Pos, Take);
    Pos += Take;
  }
  EXPECT_EQ(H.finish(), Sha256::hash(Bytes));
}

TEST(Sha256Test, HexRoundTrip) {
  Sha256Digest D = Sha256::hash(nullptr, 0);
  auto Back = digestFromHex(digestToHex(D));
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(*Back, D);
  EXPECT_FALSE(digestFromHex("abc").has_value());
  EXPECT_FALSE(digestFromHex(std::string(64, 'g')).has_value());
}

//===----------------------------------------------------------------------===//
// ThreadPool
//===----------------------------------------------------------------------===//

TEST(ThreadPoolTest, RunsEveryJob) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.size(), 4u);
  std::atomic<int> Counter{0};
  std::vector<std::future<int>> Futures;
  for (int I = 0; I != 100; ++I)
    Futures.push_back(Pool.async([I, &Counter] {
      ++Counter;
      return I * I;
    }));
  int Sum = 0;
  for (auto &F : Futures)
    Sum += F.get();
  EXPECT_EQ(Counter.load(), 100);
  // Sum of squares 0..99.
  EXPECT_EQ(Sum, 328350);
}

TEST(ThreadPoolTest, WaitDrainsQueue) {
  ThreadPool Pool(2);
  std::atomic<int> Done{0};
  for (int I = 0; I != 50; ++I)
    Pool.async([&Done] { ++Done; });
  Pool.wait();
  EXPECT_EQ(Done.load(), 50);
}

TEST(ThreadPoolTest, DestructorCompletesQueuedFutures) {
  std::future<int> F;
  {
    ThreadPool Pool(1);
    F = Pool.async([] { return 42; });
  }
  EXPECT_EQ(F.get(), 42);
}

//===----------------------------------------------------------------------===//
// MergeEngine
//===----------------------------------------------------------------------===//

TEST(MergeEngineTest, CanonicalizeSortsAndCoalesces) {
  ProfileData D;
  D.Arcs = {{30, 1, 2}, {10, 5, 1}, {30, 1, 3}, {10, 2, 4}};
  canonicalizeProfile(D);
  ASSERT_EQ(D.Arcs.size(), 3u);
  EXPECT_EQ(D.Arcs[0].FromPc, 10u);
  EXPECT_EQ(D.Arcs[0].SelfPc, 2u);
  EXPECT_EQ(D.Arcs[1].SelfPc, 5u);
  EXPECT_EQ(D.Arcs[2].FromPc, 30u);
  EXPECT_EQ(D.Arcs[2].Count, 5u); // 2 + 3 coalesced.
  EXPECT_TRUE(isCanonicalProfile(D));
}

TEST(MergeEngineTest, MatchesSequentialFold) {
  std::vector<ProfileData> Shards = makeShards(17, 100);
  ProfileData Fold = Shards.front();
  for (size_t I = 1; I != Shards.size(); ++I)
    cantFail(Fold.merge(Shards[I]));
  canonicalizeProfile(Fold);

  auto Merged = mergeProfiles(Shards);
  ASSERT_TRUE(static_cast<bool>(Merged));
  EXPECT_EQ(writeGmon(*Merged), writeGmon(Fold));
}

TEST(MergeEngineTest, DeterministicAcrossThreadsAndOrder) {
  std::vector<ProfileData> Shards = makeShards(41, 2000);
  auto Reference = mergeProfiles(Shards);
  ASSERT_TRUE(static_cast<bool>(Reference));
  std::vector<uint8_t> ReferenceBytes = writeGmon(*Reference);

  for (unsigned Threads : {1u, 2u, 4u, 8u}) {
    ThreadPool Pool(Threads);
    shuffle(Shards, 77 + Threads);
    auto Merged = mergeProfiles(Shards, &Pool);
    ASSERT_TRUE(static_cast<bool>(Merged)) << Threads << " threads";
    EXPECT_EQ(writeGmon(*Merged), ReferenceBytes)
        << Threads << " threads, shuffled input";
  }
}

TEST(MergeEngineTest, SumsRunsAndOverflow) {
  std::vector<ProfileData> Shards = makeShards(5, 9);
  Shards[1].RunCount = 3;
  Shards[4].ArcTableOverflowed = true;
  auto Merged = mergeProfiles(Shards);
  ASSERT_TRUE(static_cast<bool>(Merged));
  EXPECT_EQ(Merged->RunCount, 7u); // 1+3+1+1+1.
  EXPECT_TRUE(Merged->ArcTableOverflowed);
}

TEST(MergeEngineTest, RejectsIncompatibleShards) {
  std::vector<ProfileData> Shards = makeShards(3, 50);
  Shards[2].TicksPerSecond = 100;
  auto Merged = mergeProfiles(Shards);
  ASSERT_FALSE(static_cast<bool>(Merged));
  EXPECT_NE(Merged.message().find("sampling rates"), std::string::npos);
  (void)Merged.takeError();

  Shards = makeShards(3, 50);
  Shards[1].Hist = Histogram(0, 0x800, 8);
  auto Merged2 = mergeProfiles(Shards);
  ASSERT_FALSE(static_cast<bool>(Merged2));
  EXPECT_NE(Merged2.message().find("histogram ranges"), std::string::npos);
  (void)Merged2.takeError();
}

TEST(MergeEngineTest, EmptyInputFails) {
  auto Merged = mergeProfiles(std::vector<ProfileData>());
  EXPECT_FALSE(static_cast<bool>(Merged));
  (void)Merged.takeError();
}

TEST(MergeEngineTest, EmptyHistogramShardAdoptsGeometry) {
  // Regression: a shard that recorded arcs but no samples used to be
  // rejected as incompatible; it must merge and adopt the sampled
  // geometry.
  std::vector<ProfileData> Shards = makeShards(3, 70);
  Shards[1].Hist = Histogram(); // Arcs only, no samples.
  uint64_t ExpectedSamples =
      Shards[0].Hist.totalSamples() + Shards[2].Hist.totalSamples();
  cantFail(checkMergeCompatible(Shards[0], Shards[1], "a", "b"));
  cantFail(checkMergeCompatible(Shards[1], Shards[0], "b", "a"));
  auto Merged = mergeProfiles(Shards);
  ASSERT_TRUE(static_cast<bool>(Merged));
  EXPECT_EQ(Merged->Hist.lowPc(), Shards[0].Hist.lowPc());
  EXPECT_EQ(Merged->Hist.totalSamples(), ExpectedSamples);
  EXPECT_EQ(Merged->RunCount, 3u);
}

TEST(MergeEngineTest, IncompatibleSampledShardsRejectedPastEmptyFirst) {
  // Regression: validation compared everything to shard 0, so an
  // unsampled shard 0 let two incompatible sampled shards slip through.
  std::vector<ProfileData> Shards = makeShards(3, 71);
  Shards[0].Hist = Histogram(); // Empty reference decoy.
  Shards[2].Hist = Histogram(0, 0x800, 8); // Clashes with shard 1.
  auto Merged = mergeProfiles(Shards);
  ASSERT_FALSE(static_cast<bool>(Merged));
  EXPECT_NE(Merged.message().find("histogram ranges"), std::string::npos);
  (void)Merged.takeError();
}

TEST(MergeEngineTest, ArcCountsSaturateInsteadOfWrapping) {
  std::vector<ProfileData> Shards = makeShards(2, 72);
  // Force the same canonical-leading arc to near-max in both shards.
  ArcRecord Lead{1, 1, UINT64_MAX - 10};
  Shards[0].Arcs.insert(Shards[0].Arcs.begin(), Lead);
  Shards[1].Arcs.insert(Shards[1].Arcs.begin(), Lead);
  auto Merged = mergeProfiles(Shards);
  ASSERT_TRUE(static_cast<bool>(Merged));
  ASSERT_FALSE(Merged->Arcs.empty());
  EXPECT_EQ(Merged->Arcs.front().FromPc, 1u);
  EXPECT_EQ(Merged->Arcs.front().Count, UINT64_MAX);
}

//===----------------------------------------------------------------------===//
// ProfileStore
//===----------------------------------------------------------------------===//

TEST(ProfileStoreTest, PutIsContentAddressedAndIdempotent) {
  TempStoreDir Dir("idempotent");
  auto Store = ProfileStore::open(Dir.Path);
  ASSERT_TRUE(static_cast<bool>(Store));

  ProfileData D = makeShard(1);
  auto A = Store->put(D);
  ASSERT_TRUE(static_cast<bool>(A));
  // Same logical profile with a permuted arc table lands in the same slot.
  ProfileData Permuted = makeShard(1);
  std::reverse(Permuted.Arcs.begin(), Permuted.Arcs.end());
  auto B = Store->put(Permuted);
  ASSERT_TRUE(static_cast<bool>(B));
  EXPECT_EQ(*A, *B);
  EXPECT_EQ(Store->shards().size(), 1u);
  EXPECT_TRUE(fileExists(Store->objectPath(*A)));
}

TEST(ProfileStoreTest, PersistsAcrossReopen) {
  TempStoreDir Dir("reopen");
  Sha256Digest Digest;
  {
    auto Store = ProfileStore::open(Dir.Path);
    ASSERT_TRUE(static_cast<bool>(Store));
    Digest = cantFail(Store->put(makeShard(3)));
  }
  auto Store = ProfileStore::open(Dir.Path);
  ASSERT_TRUE(static_cast<bool>(Store));
  ASSERT_EQ(Store->shards().size(), 1u);
  EXPECT_EQ(Store->shards().front().Digest, Digest);
  EXPECT_EQ(Store->shards().front().Hz, 60u);
  EXPECT_EQ(Store->shards().front().NumBuckets, 0x2000u / 8);

  auto Loaded = Store->loadShard(Digest);
  ASSERT_TRUE(static_cast<bool>(Loaded));
  EXPECT_EQ(Sha256::hash(writeGmon(*Loaded)), Digest);
}

TEST(ProfileStoreTest, ResolvesUniquePrefixes) {
  TempStoreDir Dir("resolve");
  auto Store = ProfileStore::open(Dir.Path);
  ASSERT_TRUE(static_cast<bool>(Store));
  Sha256Digest A = cantFail(Store->put(makeShard(10)));
  cantFail(Store->put(makeShard(11)));

  auto Hit = Store->resolve(digestToHex(A).substr(0, 12));
  ASSERT_TRUE(static_cast<bool>(Hit));
  EXPECT_EQ(Hit->Digest, A);

  auto Miss = Store->resolve("ffffffffffff0000");
  EXPECT_FALSE(static_cast<bool>(Miss));
  (void)Miss.takeError();
  // A zero-length prefix would match everything.
  auto Empty = Store->resolve("");
  EXPECT_FALSE(static_cast<bool>(Empty));
  (void)Empty.takeError();
}

TEST(ProfileStoreTest, RejectsIncompatibleIngest) {
  TempStoreDir Dir("compat");
  auto Store = ProfileStore::open(Dir.Path);
  ASSERT_TRUE(static_cast<bool>(Store));
  cantFail(Store->put(makeShard(1)));

  ProfileData BadHz = makeShard(2);
  BadHz.TicksPerSecond = 100;
  auto R1 = Store->put(BadHz, Sha256Digest{}, "badhz.out");
  ASSERT_FALSE(static_cast<bool>(R1));
  EXPECT_NE(R1.message().find("badhz.out"), std::string::npos);
  EXPECT_NE(R1.message().find("sampling rates"), std::string::npos);
  (void)R1.takeError();

  ProfileData BadRange = makeShard(2);
  BadRange.Hist = Histogram(0, 0x100, 4);
  auto R2 = Store->put(BadRange);
  ASSERT_FALSE(static_cast<bool>(R2));
  EXPECT_NE(R2.message().find("histogram ranges"), std::string::npos);
  (void)R2.takeError();
}

TEST(ProfileStoreTest, UnsampledShardsIngestAndMerge) {
  // Regression: an arcs-only shard (no histogram) used to be rejected by
  // ingest compatibility, and an unsampled first shard disabled geometry
  // validation for everything after it.
  TempStoreDir Dir("unsampled");
  auto Store = ProfileStore::open(Dir.Path);
  ASSERT_TRUE(static_cast<bool>(Store));

  ProfileData NoSamples;
  NoSamples.TicksPerSecond = 60;
  NoSamples.addArc(0x1000, 0x1040, 9);
  cantFail(Store->put(NoSamples).takeError());

  // A sampled shard joins the unsampled one...
  cantFail(Store->put(makeShard(1)).takeError());
  // ... and pins the geometry: a clashing sampled shard is still rejected
  // no matter where the unsampled shard sorts in the index.
  ProfileData Clash = makeShard(2);
  Clash.Hist = Histogram(0, 0x100, 4);
  auto R = Store->put(Clash);
  ASSERT_FALSE(static_cast<bool>(R));
  (void)R.takeError();

  auto Merged = Store->merge({});
  ASSERT_TRUE(static_cast<bool>(Merged));
  EXPECT_EQ(Merged->Data.RunCount, 2u);
  EXPECT_EQ(Merged->Data.Hist.totalSamples(),
            makeShard(1).Hist.totalSamples());
  EXPECT_EQ(Merged->Data.callsInto(0x1040), 9u);
}

TEST(ProfileStoreTest, PinsImageIdentity) {
  TempStoreDir Dir("imageid");
  auto Store = ProfileStore::open(Dir.Path);
  ASSERT_TRUE(static_cast<bool>(Store));
  Sha256Digest Image1{};
  Image1[0] = 1;
  Sha256Digest Image2{};
  Image2[0] = 2;
  cantFail(Store->put(makeShard(1), Image1));
  // Unknown identity is always accepted.
  auto Anon = Store->put(makeShard(2));
  EXPECT_TRUE(static_cast<bool>(Anon));
  // A different known identity is not.
  auto Clash = Store->put(makeShard(3), Image2);
  ASSERT_FALSE(static_cast<bool>(Clash));
  EXPECT_NE(Clash.message().find("image"), std::string::npos);
  (void)Clash.takeError();
  // The same known identity is.
  auto Same = Store->put(makeShard(4), Image1);
  EXPECT_TRUE(static_cast<bool>(Same));
}

TEST(ProfileStoreTest, MergeDigestIgnoresIngestOrder) {
  TempStoreDir DirA("order_a"), DirB("order_b");
  auto StoreA = ProfileStore::open(DirA.Path);
  auto StoreB = ProfileStore::open(DirB.Path);
  ASSERT_TRUE(static_cast<bool>(StoreA));
  ASSERT_TRUE(static_cast<bool>(StoreB));

  std::vector<uint64_t> Seeds(24);
  std::iota(Seeds.begin(), Seeds.end(), 500);
  for (uint64_t S : Seeds)
    cantFail(StoreA->put(makeShard(S)));
  shuffle(Seeds, 99);
  for (uint64_t S : Seeds)
    cantFail(StoreB->put(makeShard(S)));

  auto MergedA = StoreA->merge({});
  auto MergedB = StoreB->merge({});
  ASSERT_TRUE(static_cast<bool>(MergedA));
  ASSERT_TRUE(static_cast<bool>(MergedB));
  EXPECT_EQ(MergedA->Digest, MergedB->Digest);
  EXPECT_EQ(writeGmon(MergedA->Data), writeGmon(MergedB->Data));
  EXPECT_EQ(MergedA->MemberCount, 24u);
}

TEST(ProfileStoreTest, MergeIsThreadCountInvariant) {
  TempStoreDir Dir("threads");
  auto Store = ProfileStore::open(Dir.Path);
  ASSERT_TRUE(static_cast<bool>(Store));
  for (uint64_t S = 0; S != 20; ++S)
    cantFail(Store->put(makeShard(700 + S)));

  std::vector<uint8_t> Reference;
  Sha256Digest AggDigest{};
  for (unsigned Threads : {1u, 2u, 4u, 8u}) {
    ThreadPool Pool(Threads);
    auto Merged = Store->merge({}, &Pool);
    ASSERT_TRUE(static_cast<bool>(Merged)) << Threads << " threads";
    EXPECT_FALSE(Merged->CacheHit) << Threads << " threads";
    std::vector<uint8_t> Bytes = writeGmon(Merged->Data);
    if (Reference.empty()) {
      Reference = Bytes;
      AggDigest = Merged->Digest;
    } else {
      EXPECT_EQ(Bytes, Reference) << Threads << " threads";
      EXPECT_EQ(Merged->Digest, AggDigest);
    }
    // Flush the cache so every thread count actually re-merges (gc now
    // retains the live full-member-set aggregate, so delete it directly).
    cantFail(removeFile(Store->cachePath(Merged->Digest)));
  }
}

TEST(ProfileStoreTest, GcRetainsLiveAggregateDropsStale) {
  // Regression: gc() used to delete every cached aggregate, including the
  // one a repeat of the most recent full-store report would need — a
  // put→report→gc→report sequence re-merged everything.  Now only stale
  // entries (subset keys, superseded full-set keys) are swept.
  TempStoreDir Dir("cache");
  auto Store = ProfileStore::open(Dir.Path);
  ASSERT_TRUE(static_cast<bool>(Store));
  std::vector<Sha256Digest> Digests;
  for (uint64_t S = 0; S != 8; ++S)
    Digests.push_back(cantFail(Store->put(makeShard(40 + S))));

  auto First = Store->merge({});
  ASSERT_TRUE(static_cast<bool>(First));
  EXPECT_FALSE(First->CacheHit);
  EXPECT_TRUE(fileExists(Store->cachePath(First->Digest)));
  // A subset aggregate is cached under its own (stale-able) key.
  auto Subset = Store->merge({Digests[0], Digests[1]});
  ASSERT_TRUE(static_cast<bool>(Subset));
  EXPECT_TRUE(fileExists(Store->cachePath(Subset->Digest)));

  auto Stats = Store->gc();
  ASSERT_TRUE(static_cast<bool>(Stats));
  EXPECT_EQ(Stats->CachedAggregates, 1u); // the subset entry
  EXPECT_EQ(Stats->RetainedAggregates, 1u); // the live full-set entry
  EXPECT_TRUE(fileExists(Store->cachePath(First->Digest)));
  EXPECT_FALSE(fileExists(Store->cachePath(Subset->Digest)));

  // put→report→gc→report: the second report is served from cache.
  auto Second = Store->merge({});
  ASSERT_TRUE(static_cast<bool>(Second));
  EXPECT_TRUE(Second->CacheHit);
  EXPECT_EQ(Second->Digest, First->Digest);
  EXPECT_EQ(writeGmon(Second->Data), writeGmon(First->Data));

  // Once new shards land, the old full-set entry is stale and sweepable.
  cantFail(Store->put(makeShard(99)));
  auto Stats2 = Store->gc();
  ASSERT_TRUE(static_cast<bool>(Stats2));
  EXPECT_EQ(Stats2->CachedAggregates, 1u);
  EXPECT_FALSE(fileExists(Store->cachePath(First->Digest)));

  auto Third = Store->merge({});
  ASSERT_TRUE(static_cast<bool>(Third));
  EXPECT_FALSE(Third->CacheHit);
}

TEST(ProfileStoreTest, SubsetMergeAndRunsSum) {
  TempStoreDir Dir("subset");
  auto Store = ProfileStore::open(Dir.Path);
  ASSERT_TRUE(static_cast<bool>(Store));
  ProfileData A = makeShard(1), B = makeShard(2), C = makeShard(3);
  A.RunCount = 2;
  B.RunCount = 5;
  Sha256Digest DA = cantFail(Store->put(A));
  Sha256Digest DB = cantFail(Store->put(B));
  cantFail(Store->put(C));

  auto Merged = Store->merge({DA, DB});
  ASSERT_TRUE(static_cast<bool>(Merged));
  EXPECT_EQ(Merged->MemberCount, 2u);
  EXPECT_EQ(Merged->Data.RunCount, 7u);
  // Duplicate members collapse.
  auto Dup = Store->merge({DA, DA, DB});
  ASSERT_TRUE(static_cast<bool>(Dup));
  EXPECT_EQ(Dup->Digest, Merged->Digest);
  EXPECT_TRUE(Dup->CacheHit);
}

TEST(ProfileStoreTest, GcSweepsOrphanObjects) {
  TempStoreDir Dir("orphans");
  auto Store = ProfileStore::open(Dir.Path);
  ASSERT_TRUE(static_cast<bool>(Store));
  cantFail(Store->put(makeShard(1)));
  // Plant an object no index record names.
  std::string Orphan = Dir.Path + "/objects/zz";
  cantFail(createDirectories(Orphan));
  cantFail(writeFileText(Orphan + "/deadbeef.gmon", "junk"));

  auto Stats = Store->gc();
  ASSERT_TRUE(static_cast<bool>(Stats));
  EXPECT_EQ(Stats->OrphanObjects, 1u);
  EXPECT_FALSE(fileExists(Orphan + "/deadbeef.gmon"));
  // The indexed object survives.
  EXPECT_TRUE(fileExists(Store->objectPath(Store->shards().front().Digest)));
}

TEST(ProfileStoreTest, MergeOfEmptyStoreFails) {
  TempStoreDir Dir("empty");
  auto Store = ProfileStore::open(Dir.Path);
  ASSERT_TRUE(static_cast<bool>(Store));
  auto Merged = Store->merge({});
  EXPECT_FALSE(static_cast<bool>(Merged));
  (void)Merged.takeError();
}

TEST(ProfileStoreTest, ConcurrentPutsKeepIndexConsistent) {
  // Regression for the serve daemon's ingest path: N worker threads
  // put() into one shared store must not interleave the index.bin
  // rewrite and drop each other's entries (the single-writer ingest
  // lock in store/ProfileStore.h).
  TempStoreDir Dir("concurrent_puts");
  auto Store = ProfileStore::open(Dir.Path);
  ASSERT_TRUE(static_cast<bool>(Store));

  constexpr unsigned NumThreads = 8;
  constexpr unsigned PutsPerThread = 4;
  std::vector<ProfileData> Shards =
      makeShards(NumThreads * PutsPerThread, /*Seed=*/400);

  std::mutex DigestsMutex;
  std::set<Sha256Digest> Digests;
  std::atomic<unsigned> Failures{0};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&, T] {
      for (unsigned I = 0; I != PutsPerThread; ++I) {
        auto Digest = Store->put(Shards[T * PutsPerThread + I]);
        if (!Digest) {
          (void)Digest.takeError();
          Failures.fetch_add(1);
          continue;
        }
        std::lock_guard<std::mutex> Lock(DigestsMutex);
        Digests.insert(*Digest);
      }
    });
  for (std::thread &Th : Threads)
    Th.join();

  ASSERT_EQ(Failures.load(), 0u);
  EXPECT_EQ(Digests.size(), size_t(NumThreads) * PutsPerThread);
  EXPECT_EQ(Store->shards().size(), Digests.size());

  // The persisted index saw every entry too: a reopened store agrees.
  auto Reopened = ProfileStore::open(Dir.Path);
  ASSERT_TRUE(static_cast<bool>(Reopened));
  ASSERT_EQ(Reopened->shards().size(), Digests.size());
  for (const ShardInfo &S : Reopened->shards())
    EXPECT_EQ(Digests.count(S.Digest), 1u) << digestToHex(S.Digest);
}

TEST(ProfileStoreTest, ConcurrentIdenticalPutsDeduplicate) {
  // The racing-dedup shape: every thread ingests the same shard, and the
  // store must end up with exactly one copy of it.
  TempStoreDir Dir("concurrent_dedup");
  auto Store = ProfileStore::open(Dir.Path);
  ASSERT_TRUE(static_cast<bool>(Store));

  ProfileData Shard = makeShard(77);
  std::atomic<unsigned> Failures{0};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != 8; ++T)
    Threads.emplace_back([&] {
      for (unsigned I = 0; I != 4; ++I) {
        auto Digest = Store->put(Shard);
        if (!Digest) {
          (void)Digest.takeError();
          Failures.fetch_add(1);
        }
      }
    });
  for (std::thread &Th : Threads)
    Th.join();

  EXPECT_EQ(Failures.load(), 0u);
  EXPECT_EQ(Store->shards().size(), 1u);
  auto Reopened = ProfileStore::open(Dir.Path);
  ASSERT_TRUE(static_cast<bool>(Reopened));
  EXPECT_EQ(Reopened->shards().size(), 1u);
}

//===----------------------------------------------------------------------===//
// Tiered compaction
//===----------------------------------------------------------------------===//

TEST(CompactionTest, ReportBytesInvariantAtEveryState) {
  // The core soundness property of the tiered store: at every intermediate
  // compaction state, a full report is byte-identical to the flat merge of
  // the uncompacted store.
  TempStoreDir Dir("compact_bytes");
  StoreOptions SO;
  SO.CompactionFanout = 4;
  auto Store = ProfileStore::open(Dir.Path, SO);
  ASSERT_TRUE(static_cast<bool>(Store));
  for (uint64_t S = 0; S != 20; ++S)
    cantFail(Store->put(makeShard(900 + S), Sha256Digest{}, "profile",
                        /*CaptureTimeNs=*/1000 + S));

  auto Reference = Store->merge({});
  ASSERT_TRUE(static_cast<bool>(Reference));
  std::vector<uint8_t> RefBytes = writeGmon(Reference->Data);

  unsigned Steps = 0;
  for (;;) {
    auto Worked = Store->compactStep();
    ASSERT_TRUE(static_cast<bool>(Worked)) << "step " << Steps;
    if (!*Worked)
      break;
    ++Steps;
    ASSERT_LT(Steps, 64u) << "compaction failed to converge";
    // Force a real merge: drop the cached aggregate, then compare bytes.
    cantFail(removeFile(Store->cachePath(Reference->Digest)));
    auto Merged = Store->merge({});
    ASSERT_TRUE(static_cast<bool>(Merged)) << "step " << Steps;
    EXPECT_FALSE(Merged->CacheHit);
    EXPECT_EQ(Merged->Digest, Reference->Digest) << "step " << Steps;
    EXPECT_EQ(writeGmon(Merged->Data), RefBytes) << "step " << Steps;
  }
  // 20 shards at fanout 4: five L1 folds, one L2 fold of 4 of them.
  EXPECT_EQ(Steps, 6u);
  EXPECT_FALSE(Store->compactionPending());

  // Fully compacted: 1 L2 run (16 shards) + 1 L1 run (4 shards), nothing
  // loose — the final merge touched 2 inputs, not 20.
  ASSERT_EQ(Store->runs().size(), 2u);
  cantFail(removeFile(Store->cachePath(Reference->Digest)));
  auto Final = Store->merge({});
  ASSERT_TRUE(static_cast<bool>(Final));
  EXPECT_EQ(Final->InputsMerged, 2u);
  EXPECT_EQ(Final->RunsUsed, 2u);
  EXPECT_EQ(writeGmon(Final->Data), RefBytes);
}

TEST(CompactionTest, SubsetQuerySlicingThroughRunFallsBack) {
  // A query whose member set cuts through a run cannot use it; the store
  // must fall back to the raw member objects and still be exact.
  TempStoreDir Dir("compact_subset");
  StoreOptions SO;
  SO.CompactionFanout = 4;
  auto Store = ProfileStore::open(Dir.Path, SO);
  ASSERT_TRUE(static_cast<bool>(Store));
  std::vector<Sha256Digest> Digests;
  for (uint64_t S = 0; S != 8; ++S)
    Digests.push_back(cantFail(
        Store->put(makeShard(300 + S), Sha256Digest{}, "profile", 1 + S)));
  cantFail(Store->compact().takeError());
  ASSERT_EQ(Store->runs().size(), 2u);

  // Pick one member out of each run: no run is fully covered.
  const auto &R0 = Store->runs()[0].Members;
  const auto &R1 = Store->runs()[1].Members;
  auto Sliced = Store->merge({R0.front(), R1.front()});
  ASSERT_TRUE(static_cast<bool>(Sliced));
  EXPECT_EQ(Sliced->MemberCount, 2u);
  EXPECT_EQ(Sliced->InputsMerged, 2u);
  EXPECT_EQ(Sliced->RunsUsed, 0u);

  // Same query against a fresh uncompacted store gives the same bytes.
  TempStoreDir FlatDir("compact_subset_flat");
  auto Flat = ProfileStore::open(FlatDir.Path);
  ASSERT_TRUE(static_cast<bool>(Flat));
  for (uint64_t S = 0; S != 8; ++S)
    cantFail(Flat->put(makeShard(300 + S)));
  auto FlatMerge = Flat->merge({R0.front(), R1.front()});
  ASSERT_TRUE(static_cast<bool>(FlatMerge));
  EXPECT_EQ(writeGmon(Sliced->Data), writeGmon(FlatMerge->Data));
}

TEST(CompactionTest, DamagedRunFallsBackToMembers) {
  // Runs are an acceleration structure: corrupting one must cost speed,
  // never correctness.
  TempStoreDir Dir("compact_damaged");
  StoreOptions SO;
  SO.CompactionFanout = 4;
  auto Store = ProfileStore::open(Dir.Path, SO);
  ASSERT_TRUE(static_cast<bool>(Store));
  for (uint64_t S = 0; S != 4; ++S)
    cantFail(Store->put(makeShard(600 + S)));
  auto Reference = Store->merge({});
  ASSERT_TRUE(static_cast<bool>(Reference));
  cantFail(Store->compact().takeError());
  ASSERT_EQ(Store->runs().size(), 1u);

  cantFail(writeFileText(Store->runPath(Store->runs()[0].Digest), "garbage"));
  cantFail(removeFile(Store->cachePath(Reference->Digest)));
  auto Merged = Store->merge({});
  ASSERT_TRUE(static_cast<bool>(Merged));
  EXPECT_EQ(Merged->RunsUsed, 0u); // fell back to the 4 member objects
  EXPECT_EQ(Merged->InputsMerged, 4u);
  EXPECT_EQ(writeGmon(Merged->Data), writeGmon(Reference->Data));
}

TEST(CompactionTest, RunsPersistAcrossReopen) {
  // Index format v2 round-trip: run manifests (level, window, members)
  // survive close/reopen.
  TempStoreDir Dir("compact_reopen");
  StoreOptions SO;
  SO.CompactionFanout = 4;
  std::vector<RunInfo> Before;
  {
    auto Store = ProfileStore::open(Dir.Path, SO);
    ASSERT_TRUE(static_cast<bool>(Store));
    for (uint64_t S = 0; S != 8; ++S)
      cantFail(Store->put(makeShard(150 + S), Sha256Digest{}, "profile",
                          100 + S));
    cantFail(Store->compact().takeError());
    Before = Store->runs();
    ASSERT_EQ(Before.size(), 2u);
  }
  auto Store = ProfileStore::open(Dir.Path, SO);
  ASSERT_TRUE(static_cast<bool>(Store));
  ASSERT_EQ(Store->runs().size(), Before.size());
  for (size_t I = 0; I != Before.size(); ++I) {
    EXPECT_EQ(Store->runs()[I].Digest, Before[I].Digest);
    EXPECT_EQ(Store->runs()[I].Level, Before[I].Level);
    EXPECT_EQ(Store->runs()[I].MinTimeNs, Before[I].MinTimeNs);
    EXPECT_EQ(Store->runs()[I].MaxTimeNs, Before[I].MaxTimeNs);
    EXPECT_EQ(Store->runs()[I].Members, Before[I].Members);
  }
  // Windows cover the members' capture times (oldest-first folding: the
  // first-planned run spans the 4 oldest stamps).
  uint64_t MinSeen = UINT64_MAX, MaxSeen = 0;
  for (const RunInfo &R : Store->runs()) {
    MinSeen = std::min(MinSeen, R.MinTimeNs);
    MaxSeen = std::max(MaxSeen, R.MaxTimeNs);
  }
  EXPECT_EQ(MinSeen, 100u);
  EXPECT_EQ(MaxSeen, 107u);
}

TEST(CompactionTest, WindowedSelection) {
  TempStoreDir Dir("window");
  auto Store = ProfileStore::open(Dir.Path);
  ASSERT_TRUE(static_cast<bool>(Store));
  std::vector<Sha256Digest> Digests;
  for (uint64_t S = 0; S != 6; ++S)
    Digests.push_back(cantFail(
        Store->put(makeShard(50 + S), Sha256Digest{}, "profile", 10 * (S + 1))));

  // [20, 40] picks capture times 20, 30, 40.
  auto Window = Store->membersInWindow(20, 40);
  ASSERT_EQ(Window.size(), 3u);
  std::vector<Sha256Digest> Expect = {Digests[1], Digests[2], Digests[3]};
  std::sort(Expect.begin(), Expect.end());
  EXPECT_EQ(Window, Expect);

  // UntilNs = 0 is unbounded above.
  EXPECT_EQ(Store->membersInWindow(40, 0).size(), 3u);
  EXPECT_EQ(Store->membersInWindow(0, 0).size(), 6u);
  EXPECT_TRUE(Store->membersInWindow(1000, 0).empty());

  // The windowed merge equals the explicit-subset merge.
  auto A = Store->merge(Window);
  auto B = Store->merge({Digests[1], Digests[2], Digests[3]});
  ASSERT_TRUE(static_cast<bool>(A));
  ASSERT_TRUE(static_cast<bool>(B));
  EXPECT_EQ(A->Digest, B->Digest);
  EXPECT_EQ(writeGmon(A->Data), writeGmon(B->Data));
}

TEST(CompactionTest, GcExpiryRetiresShardsAndRuns) {
  TempStoreDir Dir("expire");
  StoreOptions SO;
  SO.CompactionFanout = 4;
  auto Store = ProfileStore::open(Dir.Path, SO);
  ASSERT_TRUE(static_cast<bool>(Store));
  for (uint64_t S = 0; S != 8; ++S)
    cantFail(Store->put(makeShard(800 + S), Sha256Digest{}, "profile",
                        100 + S));
  cantFail(Store->compact().takeError());
  ASSERT_EQ(Store->runs().size(), 2u);

  // Expire the 4 oldest shards: their covering run retires with them.
  GcOptions GO;
  GO.ExpireBeforeNs = 104;
  auto Stats = Store->gc(GO);
  ASSERT_TRUE(static_cast<bool>(Stats));
  EXPECT_EQ(Stats->ExpiredShards, 4u);
  EXPECT_EQ(Stats->RetiredRuns, 1u);
  EXPECT_EQ(Store->shards().size(), 4u);
  ASSERT_EQ(Store->runs().size(), 1u);
  for (const ShardInfo &S : Store->shards())
    EXPECT_GE(S.CaptureTimeNs, 104u);

  // The survivors still merge, via the surviving run.
  auto Merged = Store->merge({});
  ASSERT_TRUE(static_cast<bool>(Merged));
  EXPECT_EQ(Merged->MemberCount, 4u);
  EXPECT_EQ(Merged->RunsUsed, 1u);

  // A reopened store agrees (the expiry committed to the index).
  auto Reopened = ProfileStore::open(Dir.Path, SO);
  ASSERT_TRUE(static_cast<bool>(Reopened));
  EXPECT_EQ(Reopened->shards().size(), 4u);
  EXPECT_EQ(Reopened->runs().size(), 1u);
}

TEST(CompactionTest, DamagedCacheEntryEvictedOnDetection) {
  // Regression: a torn cache entry used to survive if the recompute path
  // errored before rewriting it; now it is deleted the moment the parse
  // fails, under the store.merge.cache_evictions counter.
  TempStoreDir Dir("cache_evict");
  auto Store = ProfileStore::open(Dir.Path);
  ASSERT_TRUE(static_cast<bool>(Store));
  cantFail(Store->put(makeShard(1)));
  auto First = Store->merge({});
  ASSERT_TRUE(static_cast<bool>(First));
  std::string Cached = Store->cachePath(First->Digest);
  ASSERT_TRUE(fileExists(Cached));
  cantFail(writeFileText(Cached, "torn"));

  uint64_t EvictionsBefore =
      telemetry::counter("store.merge.cache_evictions").value();
  auto Again = Store->merge({});
  ASSERT_TRUE(static_cast<bool>(Again));
  EXPECT_FALSE(Again->CacheHit);
  EXPECT_EQ(writeGmon(Again->Data), writeGmon(First->Data));
  EXPECT_EQ(telemetry::counter("store.merge.cache_evictions").value(),
            EvictionsBefore + 1);
  // The recompute rewrote a good entry in the damaged one's place.
  ASSERT_TRUE(fileExists(Cached));
  auto Third = Store->merge({});
  ASSERT_TRUE(static_cast<bool>(Third));
  EXPECT_TRUE(Third->CacheHit);
}

TEST(CompactionTest, ThreadCountInvariantOnCompactedStore) {
  // The determinism guarantee extends through the tiered path: folds and
  // reports produce identical bytes for any pool width.
  TempStoreDir DirA("compact_threads_a"), DirB("compact_threads_b");
  StoreOptions SO;
  SO.CompactionFanout = 4;
  auto StoreA = ProfileStore::open(DirA.Path, SO);
  auto StoreB = ProfileStore::open(DirB.Path, SO);
  ASSERT_TRUE(static_cast<bool>(StoreA));
  ASSERT_TRUE(static_cast<bool>(StoreB));
  for (uint64_t S = 0; S != 12; ++S) {
    cantFail(StoreA->put(makeShard(2000 + S), Sha256Digest{}, "profile", S));
    cantFail(StoreB->put(makeShard(2000 + S), Sha256Digest{}, "profile", S));
  }
  ThreadPool PoolA(1), PoolB(8);
  cantFail(StoreA->compact(&PoolA).takeError());
  cantFail(StoreB->compact(&PoolB).takeError());
  ASSERT_EQ(StoreA->runs().size(), StoreB->runs().size());
  for (size_t I = 0; I != StoreA->runs().size(); ++I)
    EXPECT_EQ(StoreA->runs()[I].Digest, StoreB->runs()[I].Digest);

  auto A = StoreA->merge({}, &PoolA);
  auto B = StoreB->merge({}, &PoolB);
  ASSERT_TRUE(static_cast<bool>(A));
  ASSERT_TRUE(static_cast<bool>(B));
  EXPECT_EQ(A->Digest, B->Digest);
  EXPECT_EQ(writeGmon(A->Data), writeGmon(B->Data));
}
