//===- tests/store_test.cpp - Profile store, merge engine, pool, digests --===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the profile repository subsystem: SHA-256 known-answer
/// vectors, ThreadPool behavior, canonical form, merge determinism across
/// thread counts and shard orders, the aggregate cache (hit / miss / gc
/// invalidation), and store compatibility validation at ingest.
///
//===----------------------------------------------------------------------===//

#include "gmon/GmonFile.h"
#include "store/MergeEngine.h"
#include "store/ProfileStore.h"
#include "support/FileUtils.h"
#include "support/Random.h"
#include "support/Sha256.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <mutex>
#include <numeric>
#include <set>
#include <string>
#include <thread>

using namespace gprof;

namespace {

/// A fresh store root under the test temp dir, removed on destruction.
struct TempStoreDir {
  explicit TempStoreDir(const std::string &Name)
      : Path(testing::TempDir() + "/gprof_store_" + Name) {
    std::filesystem::remove_all(Path);
  }
  ~TempStoreDir() { std::filesystem::remove_all(Path); }
  std::string Path;
};

/// Builds one synthetic shard with the shared geometry and seed-dependent
/// contents.
ProfileData makeShard(uint64_t Seed) {
  SplitMix64 Rng(Seed);
  ProfileData D;
  D.TicksPerSecond = 60;
  D.Hist = Histogram(0x1000, 0x3000, 8);
  for (int I = 0; I != 64; ++I)
    D.Hist.recordPc(0x1000 + Rng.nextBelow(0x2000));
  for (int I = 0; I != 32; ++I)
    D.addArc(0x1000 + Rng.nextBelow(64) * 8, 0x1000 + Rng.nextBelow(16) * 128,
             1 + Rng.nextBelow(9));
  return D;
}

std::vector<ProfileData> makeShards(size_t N, uint64_t Seed) {
  std::vector<ProfileData> Shards;
  for (size_t I = 0; I != N; ++I) {
    ProfileData D = makeShard(Seed + I);
    canonicalizeProfile(D);
    Shards.push_back(std::move(D));
  }
  return Shards;
}

/// Deterministic Fisher-Yates shuffle.
template <typename T> void shuffle(std::vector<T> &V, uint64_t Seed) {
  SplitMix64 Rng(Seed);
  for (size_t I = V.size(); I > 1; --I)
    std::swap(V[I - 1], V[Rng.nextBelow(I)]);
}

} // namespace

//===----------------------------------------------------------------------===//
// Sha256
//===----------------------------------------------------------------------===//

TEST(Sha256Test, KnownAnswerVectors) {
  // FIPS 180-4 test vectors.
  EXPECT_EQ(digestToHex(Sha256::hash(nullptr, 0)),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  const char *Abc = "abc";
  EXPECT_EQ(digestToHex(Sha256::hash(
                reinterpret_cast<const uint8_t *>(Abc), 3)),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  const char *Two = "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
  EXPECT_EQ(digestToHex(Sha256::hash(
                reinterpret_cast<const uint8_t *>(Two), 56)),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  SplitMix64 Rng(7);
  std::vector<uint8_t> Bytes(100000);
  for (uint8_t &B : Bytes)
    B = static_cast<uint8_t>(Rng.next());
  Sha256 H;
  // Uneven chunking crosses block boundaries in every alignment.
  size_t Pos = 0;
  for (size_t Chunk = 1; Pos < Bytes.size(); Chunk = Chunk * 3 + 1) {
    size_t Take = std::min(Chunk, Bytes.size() - Pos);
    H.update(Bytes.data() + Pos, Take);
    Pos += Take;
  }
  EXPECT_EQ(H.finish(), Sha256::hash(Bytes));
}

TEST(Sha256Test, HexRoundTrip) {
  Sha256Digest D = Sha256::hash(nullptr, 0);
  auto Back = digestFromHex(digestToHex(D));
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(*Back, D);
  EXPECT_FALSE(digestFromHex("abc").has_value());
  EXPECT_FALSE(digestFromHex(std::string(64, 'g')).has_value());
}

//===----------------------------------------------------------------------===//
// ThreadPool
//===----------------------------------------------------------------------===//

TEST(ThreadPoolTest, RunsEveryJob) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.size(), 4u);
  std::atomic<int> Counter{0};
  std::vector<std::future<int>> Futures;
  for (int I = 0; I != 100; ++I)
    Futures.push_back(Pool.async([I, &Counter] {
      ++Counter;
      return I * I;
    }));
  int Sum = 0;
  for (auto &F : Futures)
    Sum += F.get();
  EXPECT_EQ(Counter.load(), 100);
  // Sum of squares 0..99.
  EXPECT_EQ(Sum, 328350);
}

TEST(ThreadPoolTest, WaitDrainsQueue) {
  ThreadPool Pool(2);
  std::atomic<int> Done{0};
  for (int I = 0; I != 50; ++I)
    Pool.async([&Done] { ++Done; });
  Pool.wait();
  EXPECT_EQ(Done.load(), 50);
}

TEST(ThreadPoolTest, DestructorCompletesQueuedFutures) {
  std::future<int> F;
  {
    ThreadPool Pool(1);
    F = Pool.async([] { return 42; });
  }
  EXPECT_EQ(F.get(), 42);
}

//===----------------------------------------------------------------------===//
// MergeEngine
//===----------------------------------------------------------------------===//

TEST(MergeEngineTest, CanonicalizeSortsAndCoalesces) {
  ProfileData D;
  D.Arcs = {{30, 1, 2}, {10, 5, 1}, {30, 1, 3}, {10, 2, 4}};
  canonicalizeProfile(D);
  ASSERT_EQ(D.Arcs.size(), 3u);
  EXPECT_EQ(D.Arcs[0].FromPc, 10u);
  EXPECT_EQ(D.Arcs[0].SelfPc, 2u);
  EXPECT_EQ(D.Arcs[1].SelfPc, 5u);
  EXPECT_EQ(D.Arcs[2].FromPc, 30u);
  EXPECT_EQ(D.Arcs[2].Count, 5u); // 2 + 3 coalesced.
  EXPECT_TRUE(isCanonicalProfile(D));
}

TEST(MergeEngineTest, MatchesSequentialFold) {
  std::vector<ProfileData> Shards = makeShards(17, 100);
  ProfileData Fold = Shards.front();
  for (size_t I = 1; I != Shards.size(); ++I)
    cantFail(Fold.merge(Shards[I]));
  canonicalizeProfile(Fold);

  auto Merged = mergeProfiles(Shards);
  ASSERT_TRUE(static_cast<bool>(Merged));
  EXPECT_EQ(writeGmon(*Merged), writeGmon(Fold));
}

TEST(MergeEngineTest, DeterministicAcrossThreadsAndOrder) {
  std::vector<ProfileData> Shards = makeShards(41, 2000);
  auto Reference = mergeProfiles(Shards);
  ASSERT_TRUE(static_cast<bool>(Reference));
  std::vector<uint8_t> ReferenceBytes = writeGmon(*Reference);

  for (unsigned Threads : {1u, 2u, 4u, 8u}) {
    ThreadPool Pool(Threads);
    shuffle(Shards, 77 + Threads);
    auto Merged = mergeProfiles(Shards, &Pool);
    ASSERT_TRUE(static_cast<bool>(Merged)) << Threads << " threads";
    EXPECT_EQ(writeGmon(*Merged), ReferenceBytes)
        << Threads << " threads, shuffled input";
  }
}

TEST(MergeEngineTest, SumsRunsAndOverflow) {
  std::vector<ProfileData> Shards = makeShards(5, 9);
  Shards[1].RunCount = 3;
  Shards[4].ArcTableOverflowed = true;
  auto Merged = mergeProfiles(Shards);
  ASSERT_TRUE(static_cast<bool>(Merged));
  EXPECT_EQ(Merged->RunCount, 7u); // 1+3+1+1+1.
  EXPECT_TRUE(Merged->ArcTableOverflowed);
}

TEST(MergeEngineTest, RejectsIncompatibleShards) {
  std::vector<ProfileData> Shards = makeShards(3, 50);
  Shards[2].TicksPerSecond = 100;
  auto Merged = mergeProfiles(Shards);
  ASSERT_FALSE(static_cast<bool>(Merged));
  EXPECT_NE(Merged.message().find("sampling rates"), std::string::npos);
  (void)Merged.takeError();

  Shards = makeShards(3, 50);
  Shards[1].Hist = Histogram(0, 0x800, 8);
  auto Merged2 = mergeProfiles(Shards);
  ASSERT_FALSE(static_cast<bool>(Merged2));
  EXPECT_NE(Merged2.message().find("histogram ranges"), std::string::npos);
  (void)Merged2.takeError();
}

TEST(MergeEngineTest, EmptyInputFails) {
  auto Merged = mergeProfiles({});
  EXPECT_FALSE(static_cast<bool>(Merged));
  (void)Merged.takeError();
}

TEST(MergeEngineTest, EmptyHistogramShardAdoptsGeometry) {
  // Regression: a shard that recorded arcs but no samples used to be
  // rejected as incompatible; it must merge and adopt the sampled
  // geometry.
  std::vector<ProfileData> Shards = makeShards(3, 70);
  Shards[1].Hist = Histogram(); // Arcs only, no samples.
  uint64_t ExpectedSamples =
      Shards[0].Hist.totalSamples() + Shards[2].Hist.totalSamples();
  cantFail(checkMergeCompatible(Shards[0], Shards[1], "a", "b"));
  cantFail(checkMergeCompatible(Shards[1], Shards[0], "b", "a"));
  auto Merged = mergeProfiles(Shards);
  ASSERT_TRUE(static_cast<bool>(Merged));
  EXPECT_EQ(Merged->Hist.lowPc(), Shards[0].Hist.lowPc());
  EXPECT_EQ(Merged->Hist.totalSamples(), ExpectedSamples);
  EXPECT_EQ(Merged->RunCount, 3u);
}

TEST(MergeEngineTest, IncompatibleSampledShardsRejectedPastEmptyFirst) {
  // Regression: validation compared everything to shard 0, so an
  // unsampled shard 0 let two incompatible sampled shards slip through.
  std::vector<ProfileData> Shards = makeShards(3, 71);
  Shards[0].Hist = Histogram(); // Empty reference decoy.
  Shards[2].Hist = Histogram(0, 0x800, 8); // Clashes with shard 1.
  auto Merged = mergeProfiles(Shards);
  ASSERT_FALSE(static_cast<bool>(Merged));
  EXPECT_NE(Merged.message().find("histogram ranges"), std::string::npos);
  (void)Merged.takeError();
}

TEST(MergeEngineTest, ArcCountsSaturateInsteadOfWrapping) {
  std::vector<ProfileData> Shards = makeShards(2, 72);
  // Force the same canonical-leading arc to near-max in both shards.
  ArcRecord Lead{1, 1, UINT64_MAX - 10};
  Shards[0].Arcs.insert(Shards[0].Arcs.begin(), Lead);
  Shards[1].Arcs.insert(Shards[1].Arcs.begin(), Lead);
  auto Merged = mergeProfiles(Shards);
  ASSERT_TRUE(static_cast<bool>(Merged));
  ASSERT_FALSE(Merged->Arcs.empty());
  EXPECT_EQ(Merged->Arcs.front().FromPc, 1u);
  EXPECT_EQ(Merged->Arcs.front().Count, UINT64_MAX);
}

//===----------------------------------------------------------------------===//
// ProfileStore
//===----------------------------------------------------------------------===//

TEST(ProfileStoreTest, PutIsContentAddressedAndIdempotent) {
  TempStoreDir Dir("idempotent");
  auto Store = ProfileStore::open(Dir.Path);
  ASSERT_TRUE(static_cast<bool>(Store));

  ProfileData D = makeShard(1);
  auto A = Store->put(D);
  ASSERT_TRUE(static_cast<bool>(A));
  // Same logical profile with a permuted arc table lands in the same slot.
  ProfileData Permuted = makeShard(1);
  std::reverse(Permuted.Arcs.begin(), Permuted.Arcs.end());
  auto B = Store->put(Permuted);
  ASSERT_TRUE(static_cast<bool>(B));
  EXPECT_EQ(*A, *B);
  EXPECT_EQ(Store->shards().size(), 1u);
  EXPECT_TRUE(fileExists(Store->objectPath(*A)));
}

TEST(ProfileStoreTest, PersistsAcrossReopen) {
  TempStoreDir Dir("reopen");
  Sha256Digest Digest;
  {
    auto Store = ProfileStore::open(Dir.Path);
    ASSERT_TRUE(static_cast<bool>(Store));
    Digest = cantFail(Store->put(makeShard(3)));
  }
  auto Store = ProfileStore::open(Dir.Path);
  ASSERT_TRUE(static_cast<bool>(Store));
  ASSERT_EQ(Store->shards().size(), 1u);
  EXPECT_EQ(Store->shards().front().Digest, Digest);
  EXPECT_EQ(Store->shards().front().Hz, 60u);
  EXPECT_EQ(Store->shards().front().NumBuckets, 0x2000u / 8);

  auto Loaded = Store->loadShard(Digest);
  ASSERT_TRUE(static_cast<bool>(Loaded));
  EXPECT_EQ(Sha256::hash(writeGmon(*Loaded)), Digest);
}

TEST(ProfileStoreTest, ResolvesUniquePrefixes) {
  TempStoreDir Dir("resolve");
  auto Store = ProfileStore::open(Dir.Path);
  ASSERT_TRUE(static_cast<bool>(Store));
  Sha256Digest A = cantFail(Store->put(makeShard(10)));
  cantFail(Store->put(makeShard(11)));

  auto Hit = Store->resolve(digestToHex(A).substr(0, 12));
  ASSERT_TRUE(static_cast<bool>(Hit));
  EXPECT_EQ(Hit->Digest, A);

  auto Miss = Store->resolve("ffffffffffff0000");
  EXPECT_FALSE(static_cast<bool>(Miss));
  (void)Miss.takeError();
  // A zero-length prefix would match everything.
  auto Empty = Store->resolve("");
  EXPECT_FALSE(static_cast<bool>(Empty));
  (void)Empty.takeError();
}

TEST(ProfileStoreTest, RejectsIncompatibleIngest) {
  TempStoreDir Dir("compat");
  auto Store = ProfileStore::open(Dir.Path);
  ASSERT_TRUE(static_cast<bool>(Store));
  cantFail(Store->put(makeShard(1)));

  ProfileData BadHz = makeShard(2);
  BadHz.TicksPerSecond = 100;
  auto R1 = Store->put(BadHz, Sha256Digest{}, "badhz.out");
  ASSERT_FALSE(static_cast<bool>(R1));
  EXPECT_NE(R1.message().find("badhz.out"), std::string::npos);
  EXPECT_NE(R1.message().find("sampling rates"), std::string::npos);
  (void)R1.takeError();

  ProfileData BadRange = makeShard(2);
  BadRange.Hist = Histogram(0, 0x100, 4);
  auto R2 = Store->put(BadRange);
  ASSERT_FALSE(static_cast<bool>(R2));
  EXPECT_NE(R2.message().find("histogram ranges"), std::string::npos);
  (void)R2.takeError();
}

TEST(ProfileStoreTest, UnsampledShardsIngestAndMerge) {
  // Regression: an arcs-only shard (no histogram) used to be rejected by
  // ingest compatibility, and an unsampled first shard disabled geometry
  // validation for everything after it.
  TempStoreDir Dir("unsampled");
  auto Store = ProfileStore::open(Dir.Path);
  ASSERT_TRUE(static_cast<bool>(Store));

  ProfileData NoSamples;
  NoSamples.TicksPerSecond = 60;
  NoSamples.addArc(0x1000, 0x1040, 9);
  cantFail(Store->put(NoSamples).takeError());

  // A sampled shard joins the unsampled one...
  cantFail(Store->put(makeShard(1)).takeError());
  // ... and pins the geometry: a clashing sampled shard is still rejected
  // no matter where the unsampled shard sorts in the index.
  ProfileData Clash = makeShard(2);
  Clash.Hist = Histogram(0, 0x100, 4);
  auto R = Store->put(Clash);
  ASSERT_FALSE(static_cast<bool>(R));
  (void)R.takeError();

  auto Merged = Store->merge({});
  ASSERT_TRUE(static_cast<bool>(Merged));
  EXPECT_EQ(Merged->Data.RunCount, 2u);
  EXPECT_EQ(Merged->Data.Hist.totalSamples(),
            makeShard(1).Hist.totalSamples());
  EXPECT_EQ(Merged->Data.callsInto(0x1040), 9u);
}

TEST(ProfileStoreTest, PinsImageIdentity) {
  TempStoreDir Dir("imageid");
  auto Store = ProfileStore::open(Dir.Path);
  ASSERT_TRUE(static_cast<bool>(Store));
  Sha256Digest Image1{};
  Image1[0] = 1;
  Sha256Digest Image2{};
  Image2[0] = 2;
  cantFail(Store->put(makeShard(1), Image1));
  // Unknown identity is always accepted.
  auto Anon = Store->put(makeShard(2));
  EXPECT_TRUE(static_cast<bool>(Anon));
  // A different known identity is not.
  auto Clash = Store->put(makeShard(3), Image2);
  ASSERT_FALSE(static_cast<bool>(Clash));
  EXPECT_NE(Clash.message().find("image"), std::string::npos);
  (void)Clash.takeError();
  // The same known identity is.
  auto Same = Store->put(makeShard(4), Image1);
  EXPECT_TRUE(static_cast<bool>(Same));
}

TEST(ProfileStoreTest, MergeDigestIgnoresIngestOrder) {
  TempStoreDir DirA("order_a"), DirB("order_b");
  auto StoreA = ProfileStore::open(DirA.Path);
  auto StoreB = ProfileStore::open(DirB.Path);
  ASSERT_TRUE(static_cast<bool>(StoreA));
  ASSERT_TRUE(static_cast<bool>(StoreB));

  std::vector<uint64_t> Seeds(24);
  std::iota(Seeds.begin(), Seeds.end(), 500);
  for (uint64_t S : Seeds)
    cantFail(StoreA->put(makeShard(S)));
  shuffle(Seeds, 99);
  for (uint64_t S : Seeds)
    cantFail(StoreB->put(makeShard(S)));

  auto MergedA = StoreA->merge({});
  auto MergedB = StoreB->merge({});
  ASSERT_TRUE(static_cast<bool>(MergedA));
  ASSERT_TRUE(static_cast<bool>(MergedB));
  EXPECT_EQ(MergedA->Digest, MergedB->Digest);
  EXPECT_EQ(writeGmon(MergedA->Data), writeGmon(MergedB->Data));
  EXPECT_EQ(MergedA->MemberCount, 24u);
}

TEST(ProfileStoreTest, MergeIsThreadCountInvariant) {
  TempStoreDir Dir("threads");
  auto Store = ProfileStore::open(Dir.Path);
  ASSERT_TRUE(static_cast<bool>(Store));
  for (uint64_t S = 0; S != 20; ++S)
    cantFail(Store->put(makeShard(700 + S)));

  std::vector<uint8_t> Reference;
  Sha256Digest AggDigest{};
  for (unsigned Threads : {1u, 2u, 4u, 8u}) {
    ThreadPool Pool(Threads);
    auto Merged = Store->merge({}, &Pool);
    ASSERT_TRUE(static_cast<bool>(Merged)) << Threads << " threads";
    EXPECT_FALSE(Merged->CacheHit) << Threads << " threads";
    std::vector<uint8_t> Bytes = writeGmon(Merged->Data);
    if (Reference.empty()) {
      Reference = Bytes;
      AggDigest = Merged->Digest;
    } else {
      EXPECT_EQ(Bytes, Reference) << Threads << " threads";
      EXPECT_EQ(Merged->Digest, AggDigest);
    }
    // Flush the cache so every thread count actually re-merges.
    cantFail(Store->gc().takeError());
  }
}

TEST(ProfileStoreTest, CacheHitsUntilGc) {
  TempStoreDir Dir("cache");
  auto Store = ProfileStore::open(Dir.Path);
  ASSERT_TRUE(static_cast<bool>(Store));
  for (uint64_t S = 0; S != 8; ++S)
    cantFail(Store->put(makeShard(40 + S)));

  auto First = Store->merge({});
  ASSERT_TRUE(static_cast<bool>(First));
  EXPECT_FALSE(First->CacheHit);
  EXPECT_TRUE(fileExists(Store->cachePath(First->Digest)));

  auto Second = Store->merge({});
  ASSERT_TRUE(static_cast<bool>(Second));
  EXPECT_TRUE(Second->CacheHit);
  EXPECT_EQ(writeGmon(Second->Data), writeGmon(First->Data));

  auto Stats = Store->gc();
  ASSERT_TRUE(static_cast<bool>(Stats));
  EXPECT_GE(Stats->CachedAggregates, 1u);
  EXPECT_FALSE(fileExists(Store->cachePath(First->Digest)));

  auto Third = Store->merge({});
  ASSERT_TRUE(static_cast<bool>(Third));
  EXPECT_FALSE(Third->CacheHit); // gc invalidated the cache ...
  EXPECT_EQ(Third->Digest, First->Digest); // ... but the key is stable.
  EXPECT_EQ(writeGmon(Third->Data), writeGmon(First->Data));
}

TEST(ProfileStoreTest, SubsetMergeAndRunsSum) {
  TempStoreDir Dir("subset");
  auto Store = ProfileStore::open(Dir.Path);
  ASSERT_TRUE(static_cast<bool>(Store));
  ProfileData A = makeShard(1), B = makeShard(2), C = makeShard(3);
  A.RunCount = 2;
  B.RunCount = 5;
  Sha256Digest DA = cantFail(Store->put(A));
  Sha256Digest DB = cantFail(Store->put(B));
  cantFail(Store->put(C));

  auto Merged = Store->merge({DA, DB});
  ASSERT_TRUE(static_cast<bool>(Merged));
  EXPECT_EQ(Merged->MemberCount, 2u);
  EXPECT_EQ(Merged->Data.RunCount, 7u);
  // Duplicate members collapse.
  auto Dup = Store->merge({DA, DA, DB});
  ASSERT_TRUE(static_cast<bool>(Dup));
  EXPECT_EQ(Dup->Digest, Merged->Digest);
  EXPECT_TRUE(Dup->CacheHit);
}

TEST(ProfileStoreTest, GcSweepsOrphanObjects) {
  TempStoreDir Dir("orphans");
  auto Store = ProfileStore::open(Dir.Path);
  ASSERT_TRUE(static_cast<bool>(Store));
  cantFail(Store->put(makeShard(1)));
  // Plant an object no index record names.
  std::string Orphan = Dir.Path + "/objects/zz";
  cantFail(createDirectories(Orphan));
  cantFail(writeFileText(Orphan + "/deadbeef.gmon", "junk"));

  auto Stats = Store->gc();
  ASSERT_TRUE(static_cast<bool>(Stats));
  EXPECT_EQ(Stats->OrphanObjects, 1u);
  EXPECT_FALSE(fileExists(Orphan + "/deadbeef.gmon"));
  // The indexed object survives.
  EXPECT_TRUE(fileExists(Store->objectPath(Store->shards().front().Digest)));
}

TEST(ProfileStoreTest, MergeOfEmptyStoreFails) {
  TempStoreDir Dir("empty");
  auto Store = ProfileStore::open(Dir.Path);
  ASSERT_TRUE(static_cast<bool>(Store));
  auto Merged = Store->merge({});
  EXPECT_FALSE(static_cast<bool>(Merged));
  (void)Merged.takeError();
}

TEST(ProfileStoreTest, ConcurrentPutsKeepIndexConsistent) {
  // Regression for the serve daemon's ingest path: N worker threads
  // put() into one shared store must not interleave the index.bin
  // rewrite and drop each other's entries (the single-writer ingest
  // lock in store/ProfileStore.h).
  TempStoreDir Dir("concurrent_puts");
  auto Store = ProfileStore::open(Dir.Path);
  ASSERT_TRUE(static_cast<bool>(Store));

  constexpr unsigned NumThreads = 8;
  constexpr unsigned PutsPerThread = 4;
  std::vector<ProfileData> Shards =
      makeShards(NumThreads * PutsPerThread, /*Seed=*/400);

  std::mutex DigestsMutex;
  std::set<Sha256Digest> Digests;
  std::atomic<unsigned> Failures{0};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&, T] {
      for (unsigned I = 0; I != PutsPerThread; ++I) {
        auto Digest = Store->put(Shards[T * PutsPerThread + I]);
        if (!Digest) {
          (void)Digest.takeError();
          Failures.fetch_add(1);
          continue;
        }
        std::lock_guard<std::mutex> Lock(DigestsMutex);
        Digests.insert(*Digest);
      }
    });
  for (std::thread &Th : Threads)
    Th.join();

  ASSERT_EQ(Failures.load(), 0u);
  EXPECT_EQ(Digests.size(), size_t(NumThreads) * PutsPerThread);
  EXPECT_EQ(Store->shards().size(), Digests.size());

  // The persisted index saw every entry too: a reopened store agrees.
  auto Reopened = ProfileStore::open(Dir.Path);
  ASSERT_TRUE(static_cast<bool>(Reopened));
  ASSERT_EQ(Reopened->shards().size(), Digests.size());
  for (const ShardInfo &S : Reopened->shards())
    EXPECT_EQ(Digests.count(S.Digest), 1u) << digestToHex(S.Digest);
}

TEST(ProfileStoreTest, ConcurrentIdenticalPutsDeduplicate) {
  // The racing-dedup shape: every thread ingests the same shard, and the
  // store must end up with exactly one copy of it.
  TempStoreDir Dir("concurrent_dedup");
  auto Store = ProfileStore::open(Dir.Path);
  ASSERT_TRUE(static_cast<bool>(Store));

  ProfileData Shard = makeShard(77);
  std::atomic<unsigned> Failures{0};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != 8; ++T)
    Threads.emplace_back([&] {
      for (unsigned I = 0; I != 4; ++I) {
        auto Digest = Store->put(Shard);
        if (!Digest) {
          (void)Digest.takeError();
          Failures.fetch_add(1);
        }
      }
    });
  for (std::thread &Th : Threads)
    Th.join();

  EXPECT_EQ(Failures.load(), 0u);
  EXPECT_EQ(Store->shards().size(), 1u);
  auto Reopened = ProfileStore::open(Dir.Path);
  ASSERT_TRUE(static_cast<bool>(Reopened));
  EXPECT_EQ(Reopened->shards().size(), 1u);
}
