//===- tests/metamorphic_test.cpp - Scale-invariance properties -----------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Metamorphic tests: known transformations of the input profile must
/// produce predictable transformations of the analysis.
///
///  - Scaling every arc count by a constant leaves all propagated times
///    unchanged (only the C^r_e / C_e *ratios* matter, paper §4).
///  - Scaling the histogram (summing a run with itself) scales every
///    time by the same constant and preserves all orderings.
///  - Renaming routines permutes labels but not numbers.
///  - Splitting a recorded call sequence across k profiled threads
///    (k ∈ {1,2,4,8}) leaves the merged snapshot digest unchanged — the
///    thread-aware runtime's determinism contract (docs/RUNTIME_MT.md).
///
//===----------------------------------------------------------------------===//

#include "core/Analyzer.h"
#include "core/ContextTree.h"
#include "core/SyntheticProfile.h"
#include "gmon/GmonFile.h"
#include "graph/Generators.h"
#include "runtime/Monitor.h"
#include "support/FileUtils.h"
#include "support/Random.h"
#include "support/Sha256.h"
#include "vm/CodeGen.h"
#include "vm/ParallelRun.h"

#include <gtest/gtest.h>

#include <thread>

using namespace gprof;

namespace {

/// Builds a random profile over graph \p G with arc counts scaled by
/// \p CountScale and every self time from a seeded distribution.
SyntheticProfileBuilder makeProfile(const CallGraph &G, uint64_t Seed,
                                    uint64_t CountScale) {
  SyntheticProfileBuilder B(100);
  SplitMix64 Rng(Seed);
  for (NodeId N = 0; N != G.numNodes(); ++N) {
    B.addFunction(G.nodeName(N));
    B.setSelfSeconds(static_cast<uint32_t>(N),
                     static_cast<double>(Rng.nextInRange(0, 50)) / 100.0);
  }
  for (ArcId A = 0; A != G.numArcs(); ++A) {
    const Arc &E = G.arc(A);
    B.addCall(E.From, E.To, E.Count * CountScale);
  }
  for (NodeId N = 0; N != G.numNodes(); ++N)
    if (G.inArcs(N).empty())
      B.addSpontaneous(N, CountScale);
  return B;
}

ProfileReport analyzeBuilder(const SyntheticProfileBuilder &B) {
  auto In = B.build();
  Analyzer A(std::move(In.Syms));
  return cantFail(A.analyze(In.Data));
}

} // namespace

class MetamorphicTest : public testing::TestWithParam<uint64_t> {};

TEST_P(MetamorphicTest, ArcCountScalingLeavesTimesInvariant) {
  CallGraph G = makeRandomGraph(25, 55, 9, 0.05, GetParam());
  ProfileReport R1 = analyzeBuilder(makeProfile(G, GetParam() + 1, 1));
  ProfileReport R7 = analyzeBuilder(makeProfile(G, GetParam() + 1, 7));

  ASSERT_EQ(R1.Functions.size(), R7.Functions.size());
  for (size_t I = 0; I != R1.Functions.size(); ++I) {
    EXPECT_NEAR(R1.Functions[I].SelfTime, R7.Functions[I].SelfTime, 1e-9);
    EXPECT_NEAR(R1.Functions[I].ChildTime, R7.Functions[I].ChildTime,
                1e-6)
        << R1.Functions[I].Name;
    EXPECT_EQ(R1.Functions[I].Calls * 7, R7.Functions[I].Calls);
    EXPECT_EQ(R1.Functions[I].CycleNumber, R7.Functions[I].CycleNumber);
  }
  EXPECT_NEAR(R1.TotalTime, R7.TotalTime, 1e-9);
}

TEST_P(MetamorphicTest, SummingARunWithItselfDoublesEverything) {
  CallGraph G = makeRandomGraph(20, 45, 9, 0.05, GetParam() + 100);
  SyntheticProfileBuilder B = makeProfile(G, GetParam() + 2, 1);
  auto In = B.build();
  ProfileData Doubled = In.Data;
  cantFail(Doubled.merge(In.Data));

  Analyzer A1(std::move(In.Syms));
  ProfileReport Single = cantFail(A1.analyze(In.Data));
  auto In2 = B.build();
  Analyzer A2(std::move(In2.Syms));
  ProfileReport Double = cantFail(A2.analyze(Doubled));

  EXPECT_EQ(Double.RunCount, 2u);
  EXPECT_NEAR(Double.TotalTime, 2 * Single.TotalTime, 1e-9);
  for (size_t I = 0; I != Single.Functions.size(); ++I) {
    EXPECT_NEAR(Double.Functions[I].SelfTime,
                2 * Single.Functions[I].SelfTime, 1e-9);
    EXPECT_NEAR(Double.Functions[I].totalTime(),
                2 * Single.Functions[I].totalTime(), 1e-6);
    EXPECT_EQ(Double.Functions[I].Calls, 2 * Single.Functions[I].Calls);
  }
  // Orderings are preserved exactly.
  EXPECT_EQ(Single.FlatOrder, Double.FlatOrder);
  ASSERT_EQ(Single.GraphOrder.size(), Double.GraphOrder.size());
  for (size_t I = 0; I != Single.GraphOrder.size(); ++I) {
    EXPECT_EQ(Single.GraphOrder[I].IsCycle, Double.GraphOrder[I].IsCycle);
    EXPECT_EQ(Single.GraphOrder[I].Index, Double.GraphOrder[I].Index);
  }
}

TEST_P(MetamorphicTest, DeletingAllArcsOfACallerIsolatesIt) {
  // Removing every outgoing arc of one routine must hand its inherited
  // time back to nobody — its ChildTime drops to 0 and the callees'
  // remaining parents absorb proportionally more.
  CallGraph G = makeRandomDag(15, 30, 9, GetParam() + 200);
  // Pick a node with outgoing arcs.
  NodeId Victim = InvalidNode;
  for (NodeId N = 0; N != G.numNodes(); ++N)
    if (!G.outArcs(N).empty()) {
      Victim = N;
      break;
    }
  ASSERT_NE(Victim, InvalidNode);

  SyntheticProfileBuilder B = makeProfile(G, GetParam() + 3, 1);
  auto In = B.build();
  AnalyzerOptions Opts;
  for (ArcId A : G.outArcs(Victim))
    Opts.DeleteArcs.emplace_back(G.nodeName(Victim),
                                 G.nodeName(G.arc(A).To));
  Analyzer A(std::move(In.Syms), Opts);
  ProfileReport R = cantFail(A.analyze(In.Data));
  uint32_t V = R.findFunction(G.nodeName(Victim));
  EXPECT_NEAR(R.Functions[V].ChildTime, 0.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetamorphicTest,
                         testing::Range<uint64_t>(0, 10));

//===----------------------------------------------------------------------===//
// Thread-split invariance of the runtime snapshot
//===----------------------------------------------------------------------===//

namespace {

/// SHA-256 of the serialized snapshot — the canonical identity of a
/// profile's logical content.
std::string snapshotDigest(const Monitor &Mon) {
  return digestToHex(Sha256::hash(writeGmon(Mon.extract())));
}

} // namespace

class ThreadSplitMetamorphicTest : public testing::TestWithParam<uint64_t> {};

TEST_P(ThreadSplitMetamorphicTest, SplittingAcrossThreadsPreservesDigest) {
  constexpr Address Lo = 0x1000, Hi = 0x3000;
  // A mixed stream of arc traversals and PC ticks.
  SplitMix64 Rng(GetParam() * 977 + 5);
  struct Ev {
    bool IsCall;
    Address A, B;
  };
  std::vector<Ev> Stream;
  for (int I = 0; I != 24000; ++I) {
    Address A = Lo + Rng.nextBelow(Hi - Lo);
    if (Rng.nextBool(0.3))
      Stream.push_back({false, A, 0});
    else
      Stream.push_back({true, A, Lo + Rng.nextBelow(128) * 64});
  }

  for (ArcTableKind Kind : {ArcTableKind::Bsd, ArcTableKind::OpenAddressing,
                            ArcTableKind::StdMap}) {
    MonitorOptions MO;
    MO.TableKind = Kind;
    std::string Reference;
    for (unsigned K : {1u, 2u, 4u, 8u}) {
      Monitor Mon(Lo, Hi, MO);
      // Round-robin split preserving per-thread order; each part replays
      // on its own thread.
      std::vector<std::thread> Workers;
      for (unsigned T = 0; T != K; ++T)
        Workers.emplace_back([&, T] {
          for (size_t I = T; I < Stream.size(); I += K) {
            if (Stream[I].IsCall)
              Mon.onCall(Stream[I].A, Stream[I].B);
            else
              Mon.onTick(Stream[I].A);
          }
        });
      for (std::thread &W : Workers)
        W.join();
      std::string Digest = snapshotDigest(Mon);
      if (K == 1)
        Reference = Digest;
      else
        EXPECT_EQ(Digest, Reference)
            << "table kind " << static_cast<int>(Kind) << ", k=" << K;
    }
    ASSERT_FALSE(Reference.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ThreadSplitMetamorphicTest,
                         testing::Range<uint64_t>(0, 4));

//===----------------------------------------------------------------------===//
// Context-tree invariants
//===----------------------------------------------------------------------===//

namespace {

/// Runs one corpus program on \p ThreadCount interpreter threads under a
/// context-recording monitor and returns the condensed profile.
ProfileData runCorpusWithContexts(const std::string &Name,
                                  unsigned ThreadCount, bool Contexts) {
  std::string Source =
      cantFail(readFileText(std::string(TL_CORPUS_DIR) + "/" + Name));
  CodeGenOptions CG;
  CG.EnableProfiling = true;
  Image Img = compileTLOrDie(Source, CG);
  MonitorOptions MO;
  MO.RecordContexts = Contexts;
  Monitor Mon(Img.lowPc(), Img.highPc(), MO);
  VMOptions VO;
  VO.CyclesPerTick = 997;
  cantFail(runOnThreads(Img, VO, &Mon, ThreadCount));
  return Mon.finish();
}

/// One balanced top-level unit of call/return/tick events: the smallest
/// chunk that can move between threads without tearing a context open.
struct CctEv {
  enum Kind { Call, Ret, Tick } K;
  Address FromPc = 0, SelfPc = 0;
};

void appendUnit(SplitMix64 &Rng, unsigned Depth, std::vector<CctEv> &Out) {
  Address Self = 0x1000 + Rng.nextBelow(9) * 0x80;
  Address From = 0x2000 + Rng.nextBelow(6) * 0x20;
  Out.push_back({CctEv::Call, From, Self});
  unsigned Inner = static_cast<unsigned>(Rng.nextBelow(4));
  for (unsigned I = 0; I != Inner; ++I) {
    if (Depth < 6 && Rng.nextBool(0.5))
      appendUnit(Rng, Depth + 1, Out);
    else
      Out.push_back({CctEv::Tick, 0, 0});
  }
  Out.push_back({CctEv::Ret, 0, Self});
}

void replayInto(Monitor &Mon, const std::vector<CctEv> &Events) {
  for (const CctEv &E : Events) {
    switch (E.K) {
    case CctEv::Call:
      Mon.onCall(E.FromPc, E.SelfPc);
      break;
    case CctEv::Ret:
      Mon.onReturn(E.SelfPc);
      break;
    case CctEv::Tick:
      Mon.onTick(E.SelfPc ? E.SelfPc : 0x1000);
      break;
    }
  }
}

} // namespace

class CctMetamorphicTest : public testing::TestWithParam<unsigned> {};

TEST_P(CctMetamorphicTest, CollapseReproducesArcTableByteIdentically) {
  // The standing invariant: the context tree carries strictly more
  // information than the arc table, so (a) switching CCT recording on
  // must not perturb the arcs or the histogram by a single byte, and
  // (b) collapsing the tree per (site, callee) must reproduce the arc
  // table exactly — same records, same canonical order.
  const unsigned K = GetParam();
  for (const char *Name : {"primes.tl", "dispatch.tl", "contexts.tl"}) {
    ProfileData Off = runCorpusWithContexts(Name, K, false);
    ProfileData On = runCorpusWithContexts(Name, K, true);
    ASSERT_FALSE(On.Contexts.empty()) << Name;

    ProfileData Projected = On;
    Projected.Contexts.clear();
    Projected.ContextTreeOverflowed = false;
    EXPECT_EQ(writeGmon(Projected), writeGmon(Off))
        << Name << " k=" << K << ": recording contexts changed the "
        << "arc/histogram halves";

    ProfileData Collapsed = Projected;
    Collapsed.Arcs = collapseContextsToArcs(On.Contexts);
    EXPECT_EQ(writeGmon(Collapsed), writeGmon(Projected))
        << Name << " k=" << K << ": CCT collapse disagrees with the arc "
        << "table";
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, CctMetamorphicTest,
                         testing::Values(1u, 2u, 8u));

TEST(CctThreadSplitTest, SplittingUnitsAcrossThreadsPreservesDigest) {
  // Like SplittingAcrossThreadsPreservesDigest, but the moved quantum is
  // a whole balanced top-level unit: a context is meaningless torn
  // across threads (each thread has its own shadow stack), while whole
  // units commute freely — the merged canonical tree, and hence the
  // serialized profile, must not depend on the split.
  for (uint64_t Seed : {1u, 2u, 3u}) {
    SplitMix64 Rng(Seed * 7717 + 11);
    std::vector<std::vector<CctEv>> Units;
    for (int U = 0; U != 600; ++U) {
      Units.emplace_back();
      appendUnit(Rng, 0, Units.back());
    }

    MonitorOptions MO;
    MO.RecordContexts = true;
    std::string Reference;
    for (unsigned K : {1u, 2u, 4u, 8u}) {
      Monitor Mon(0x1000, 0x3000, MO);
      std::vector<std::thread> Workers;
      for (unsigned T = 0; T != K; ++T)
        Workers.emplace_back([&, T] {
          for (size_t U = T; U < Units.size(); U += K)
            replayInto(Mon, Units[U]);
        });
      for (std::thread &W : Workers)
        W.join();
      std::string Digest = digestToHex(Sha256::hash(writeGmon(Mon.extract())));
      if (K == 1)
        Reference = Digest;
      else
        EXPECT_EQ(Digest, Reference) << "seed " << Seed << ", k=" << K;
    }
  }
}

TEST(CctShardMergeTest, MergeGroupingAndOrderLeaveDigestInvariant) {
  // Shard-merge invariance: however a set of context-carrying shards is
  // grouped and ordered into a sum (sequential, pairwise, reversed), the
  // canonical tree — and the serialized profile — is the same.
  std::vector<ProfileData> Shards;
  for (uint64_t S = 0; S != 4; ++S) {
    SplitMix64 Rng(S * 131 + 7);
    Monitor Mon(0x1000, 0x3000, [] {
      MonitorOptions MO;
      MO.RecordContexts = true;
      return MO;
    }());
    for (int U = 0; U != 200; ++U) {
      std::vector<CctEv> Unit;
      appendUnit(Rng, 0, Unit);
      replayInto(Mon, Unit);
    }
    Shards.push_back(Mon.finish());
  }

  auto MergeAll = [&](std::vector<size_t> Order) {
    ProfileData Sum = Shards[Order[0]];
    for (size_t I = 1; I != Order.size(); ++I)
      cantFail(Sum.merge(Shards[Order[I]]));
    return writeGmon(Sum);
  };
  std::vector<uint8_t> Sequential = MergeAll({0, 1, 2, 3});
  EXPECT_EQ(MergeAll({3, 2, 1, 0}), Sequential);
  EXPECT_EQ(MergeAll({2, 0, 3, 1}), Sequential);

  ProfileData Left = Shards[0], Right = Shards[2];
  cantFail(Left.merge(Shards[1]));
  cantFail(Right.merge(Shards[3]));
  cantFail(Left.merge(Right));
  EXPECT_EQ(writeGmon(Left), Sequential);
}
