//===- tests/telemetry_test.cpp - The telemetry layer's own tests ---------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the observability substrate: registry semantics (counters,
/// gauges, reset), span recording across thread-pool workers (the per-
/// thread buffers run under TSan via GPROF_SANITIZE=thread), the Chrome
/// trace writer round-tripped through its own validator, and the central
/// promise of docs/TELEMETRY.md — every Kind::Counter value produced by
/// the analysis pipeline is identical at any thread count.
///
//===----------------------------------------------------------------------===//

#include "core/Analyzer.h"
#include "gmon/GmonFile.h"
#include "runtime/ArcTable.h"
#include "runtime/Monitor.h"
#include "support/EventLog.h"
#include "support/FileUtils.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"
#include "support/TraceWriter.h"
#include "vm/CodeGen.h"
#include "vm/VM.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include <unistd.h>

using namespace gprof;
using telemetry::Kind;
using telemetry::Metric;
using telemetry::Registry;
using telemetry::SpanRecord;

namespace {

/// Every test shares the process-wide registry, so each starts from a
/// clean slate: values zeroed, spans dropped, span recording off.
void freshRegistry() {
  Registry::instance().enableSpans(false);
  Registry::instance().resetValues();
}

/// Snapshot of every Kind::Counter value, keyed by name.  Gauges are
/// deliberately excluded: they record scheduling facts and carry no
/// cross-thread-count guarantee.
std::map<std::string, uint64_t> counterSnapshot() {
  std::map<std::string, uint64_t> Out;
  for (const Metric *M : Registry::instance().metrics())
    if (M->kind() == Kind::Counter)
      Out[M->name()] = M->value();
  return Out;
}

TEST(TelemetryTest, CounterAndGaugeBasics) {
  freshRegistry();
  Metric &C = telemetry::counter("test.basics.counter");
  C.add(3);
  C.add(4);
  EXPECT_EQ(C.value(), 7u);
  // Same name, same object.
  EXPECT_EQ(&telemetry::counter("test.basics.counter"), &C);
  // A name keeps its first-registered kind.
  EXPECT_EQ(Registry::instance().gauge("test.basics.counter").kind(),
            Kind::Counter);

  Metric &G = telemetry::gauge("test.basics.gauge");
  G.set(10);
  G.max(5); // Lower: no effect.
  EXPECT_EQ(G.value(), 10u);
  G.max(25);
  EXPECT_EQ(G.value(), 25u);
  EXPECT_EQ(G.kind(), Kind::Gauge);
}

TEST(TelemetryTest, MetricsAreSortedAndSurviveReset) {
  freshRegistry();
  Metric &B = telemetry::counter("test.sort.b");
  telemetry::counter("test.sort.a").add(1);
  B.add(2);

  std::vector<const Metric *> All = Registry::instance().metrics();
  for (size_t I = 1; I < All.size(); ++I)
    EXPECT_LT(All[I - 1]->name(), All[I]->name());

  Registry::instance().resetValues();
  // Values are zeroed but the registration (and the reference) survives.
  EXPECT_EQ(B.value(), 0u);
  B.add(5);
  EXPECT_EQ(telemetry::counter("test.sort.b").value(), 5u);
}

TEST(TelemetryTest, DisabledSpansRecordNothing) {
  freshRegistry();
  {
    telemetry::Span S("test.disabled");
    (void)S;
  }
  EXPECT_TRUE(Registry::instance().collectSpans().empty());
}

TEST(TelemetryTest, SpansRecordAcrossPoolThreads) {
  // The interesting case for TSan: pool workers write their own buffers
  // while the main thread enables/collects.
  freshRegistry();
  Registry::instance().enableSpans(true);
  Registry::instance().setCurrentThreadName("main");
  {
    telemetry::Span Outer("test.outer");
    ThreadPool Pool(4);
    for (int I = 0; I != 32; ++I)
      Pool.async([] { telemetry::Span Inner("test.inner"); });
    Pool.wait();
  }
  Registry::instance().enableSpans(false);

  std::vector<SpanRecord> Spans = Registry::instance().collectSpans();
  size_t Outer = 0, Inner = 0, PoolJobs = 0;
  for (const SpanRecord &S : Spans) {
    EXPECT_LE(S.BeginNs, S.EndNs);
    Outer += S.Name == "test.outer";
    Inner += S.Name == "test.inner";
    PoolJobs += S.Name == "pool.job"; // The pool wraps each job itself.
  }
  EXPECT_EQ(Outer, 1u);
  EXPECT_EQ(Inner, 32u);
  EXPECT_EQ(PoolJobs, 32u);
  // Sorted by (tid, begin).
  for (size_t I = 1; I < Spans.size(); ++I) {
    EXPECT_LE(Spans[I - 1].Tid, Spans[I].Tid);
    if (Spans[I - 1].Tid == Spans[I].Tid)
      EXPECT_LE(Spans[I - 1].BeginNs, Spans[I].BeginNs);
  }
  // The main thread kept its name; workers registered theirs.
  bool SawMain = false, SawWorker = false;
  for (const auto &[Tid, Name] : Registry::instance().threadNames()) {
    SawMain |= Name == "main";
    SawWorker |= Name.rfind("worker-", 0) == 0;
  }
  EXPECT_TRUE(SawMain);
  EXPECT_TRUE(SawWorker);
}

TEST(TelemetryTest, StatsJsonIsValidAndCarriesKinds) {
  freshRegistry();
  telemetry::counter("test.json.counter").add(42);
  telemetry::gauge("test.json.gauge").set(7);

  std::string Json = Registry::instance().renderStatsJson("telemetry_test");
  auto Consumed = validateJson(Json);
  ASSERT_TRUE(Consumed.hasValue()) << Consumed.message();
  EXPECT_NE(Json.find("\"bench\": \"telemetry_test\""), std::string::npos);
  EXPECT_NE(Json.find("{\"metric\": \"test.json.counter\", "
                      "\"kind\": \"counter\", \"value\": 42}"),
            std::string::npos)
      << Json;
  EXPECT_NE(Json.find("{\"metric\": \"test.json.gauge\", "
                      "\"kind\": \"gauge\", \"value\": 7}"),
            std::string::npos)
      << Json;
}

//===----------------------------------------------------------------------===//
// Duration histograms
//===----------------------------------------------------------------------===//

TEST(HistogramTest, BucketIndexAndBounds) {
  using telemetry::DurationHistogram;
  using telemetry::HistogramBucketCount;
  EXPECT_EQ(DurationHistogram::bucketIndex(0), 0u);
  EXPECT_EQ(DurationHistogram::bucketIndex(1), 1u);
  EXPECT_EQ(DurationHistogram::bucketIndex(2), 2u);
  EXPECT_EQ(DurationHistogram::bucketIndex(3), 2u);
  EXPECT_EQ(DurationHistogram::bucketIndex(4), 3u);
  EXPECT_EQ(DurationHistogram::bucketIndex(1023), 10u);
  EXPECT_EQ(DurationHistogram::bucketIndex(1024), 11u);
  EXPECT_EQ(DurationHistogram::bucketIndex(UINT64_MAX),
            HistogramBucketCount - 1);

  EXPECT_EQ(DurationHistogram::bucketUpperBound(0), 0u);
  EXPECT_EQ(DurationHistogram::bucketUpperBound(1), 1u);
  EXPECT_EQ(DurationHistogram::bucketUpperBound(2), 3u);
  EXPECT_EQ(DurationHistogram::bucketUpperBound(10), 1023u);
  EXPECT_EQ(DurationHistogram::bucketUpperBound(HistogramBucketCount - 1),
            UINT64_MAX);
  // Every value fits under its own bucket's upper bound, and above the
  // previous bucket's.
  for (uint64_t V : std::vector<uint64_t>{0, 1, 2, 7, 1000, 123456789,
                                          uint64_t(1) << 62, UINT64_MAX}) {
    size_t B = DurationHistogram::bucketIndex(V);
    EXPECT_LE(V, DurationHistogram::bucketUpperBound(B)) << V;
    if (B > 0 && B < HistogramBucketCount - 1) {
      EXPECT_GT(V, DurationHistogram::bucketUpperBound(B - 1)) << V;
    }
  }
}

TEST(HistogramTest, ExactPercentilesOnKnownFill) {
  freshRegistry();
  telemetry::DurationHistogram &H =
      telemetry::histogram("test.hist.percentiles");
  for (uint64_t V : {0ull, 1ull, 1ull, 2ull, 1000ull})
    H.record(V);

  telemetry::HistogramSnapshot S = H.snapshot();
  EXPECT_EQ(S.count(), 5u);
  EXPECT_EQ(S.Sum, 1004u);
  // Ranks are exact: p50 -> rank 3 of {0,1,1,2,1000} lands in the
  // width-1 bucket (upper bound 1); p95/p99 -> rank 5 lands in the
  // bucket holding 1000 (upper bound 1023).
  EXPECT_EQ(S.percentile(0.50), 1u);
  EXPECT_EQ(S.percentile(0.95), 1023u);
  EXPECT_EQ(S.percentile(0.99), 1023u);

  telemetry::HistogramSnapshot Empty;
  EXPECT_EQ(Empty.count(), 0u);
  EXPECT_EQ(Empty.percentile(0.50), 0u);
}

TEST(HistogramTest, MergeIsOrderIndependent) {
  telemetry::HistogramSnapshot A, B, C;
  auto Fill = [](telemetry::HistogramSnapshot &S,
                 std::vector<uint64_t> Values) {
    for (uint64_t V : Values) {
      S.Counts[telemetry::DurationHistogram::bucketIndex(V)] += 1;
      S.Sum += V;
    }
  };
  Fill(A, {0, 1, 5});
  Fill(B, {1000, 1000000, 3});
  Fill(C, {7, 7, 7, 1u << 20});

  telemetry::HistogramSnapshot Fwd, Rev;
  Fwd.merge(A);
  Fwd.merge(B);
  Fwd.merge(C);
  Rev.merge(C);
  Rev.merge(B);
  Rev.merge(A);
  EXPECT_EQ(Fwd.Counts, Rev.Counts);
  EXPECT_EQ(Fwd.Sum, Rev.Sum);
  EXPECT_EQ(Fwd.count(), 10u);
  EXPECT_EQ(Fwd.percentile(0.50), Rev.percentile(0.50));
  EXPECT_EQ(Fwd.percentile(0.99), Rev.percentile(0.99));
}

TEST(HistogramTest, RegistrySemanticsAndReset) {
  freshRegistry();
  telemetry::DurationHistogram &H = telemetry::histogram("test.hist.reg.b");
  telemetry::histogram("test.hist.reg.a").record(1);
  // Same name, same object.
  EXPECT_EQ(&telemetry::histogram("test.hist.reg.b"), &H);
  H.record(10);
  EXPECT_EQ(H.snapshot().count(), 1u);

  // Sorted by name, separate namespace from counters/gauges.
  std::vector<const telemetry::DurationHistogram *> All =
      Registry::instance().histograms();
  for (size_t I = 1; I < All.size(); ++I)
    EXPECT_LT(All[I - 1]->name(), All[I]->name());
  telemetry::counter("test.hist.reg.b").add(5); // Does not clash.
  EXPECT_EQ(telemetry::counter("test.hist.reg.b").value(), 5u);

  // resetValues zeroes buckets and sum; registration and references
  // survive.
  Registry::instance().resetValues();
  EXPECT_EQ(H.snapshot().count(), 0u);
  EXPECT_EQ(H.snapshot().Sum, 0u);
  H.record(3);
  EXPECT_EQ(telemetry::histogram("test.hist.reg.b").snapshot().count(), 1u);
}

TEST(HistogramTest, ConcurrentRecordingIsLossless) {
  // The TSan-relevant case: many threads hammer one histogram.  Relaxed
  // atomics may interleave, but no increment may be lost.
  freshRegistry();
  telemetry::DurationHistogram &H =
      telemetry::histogram("test.hist.concurrent");
  constexpr unsigned Threads = 8, PerThread = 5000;
  {
    ThreadPool Pool(Threads);
    for (unsigned T = 0; T != Threads; ++T)
      Pool.async([&H] {
        for (unsigned I = 0; I != PerThread; ++I)
          H.record(I % 1024);
      });
    Pool.wait();
  }
  telemetry::HistogramSnapshot S = H.snapshot();
  EXPECT_EQ(S.count(), uint64_t(Threads) * PerThread);
  uint64_t ExpectSum = 0;
  for (unsigned I = 0; I != PerThread; ++I)
    ExpectSum += I % 1024;
  EXPECT_EQ(S.Sum, uint64_t(Threads) * ExpectSum);
}

TEST(HistogramTest, StatsJsonRowsAndRenderOptions) {
  freshRegistry();
  telemetry::counter("test.row.counter").add(1);
  telemetry::DurationHistogram &H = telemetry::histogram("test.row.hist");
  for (uint64_t V : {0ull, 1ull, 1ull, 2ull, 1000ull})
    H.record(V);

  std::string Json = Registry::instance().renderStatsJson("telemetry_test");
  ASSERT_TRUE(validateJson(Json).hasValue()) << Json;
  EXPECT_NE(Json.find("{\"metric\": \"test.row.hist\", "
                      "\"kind\": \"histogram\", \"count\": 5, "
                      "\"sum\": 1004, \"p50\": 1, \"p95\": 1023, "
                      "\"p99\": 1023}"),
            std::string::npos)
      << Json;

  // MetricPrefix filters both metric and histogram rows; ExtraFields
  // land as top-level members ahead of "results".
  Registry::StatsRenderOptions RO;
  RO.MetricPrefix = "test.row.h";
  RO.ExtraFields.emplace_back("uptime_ns", "12345");
  std::string Filtered =
      Registry::instance().renderStatsJson("telemetry_test", RO);
  ASSERT_TRUE(validateJson(Filtered).hasValue()) << Filtered;
  EXPECT_NE(Filtered.find("test.row.hist"), std::string::npos);
  EXPECT_EQ(Filtered.find("test.row.counter"), std::string::npos);
  EXPECT_NE(Filtered.find("\"uptime_ns\": 12345"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// EventLog
//===----------------------------------------------------------------------===//

TEST(EventLogTest, EmitSinceAndRingBound) {
  EventLog &Log = EventLog::instance();
  Log.clear();
  const uint64_t Base = Log.lastSeq();
  const size_t OldCapacity = Log.capacity();

  Log.emit("test.event", jsonStringField("why", "because") + ", " +
                             jsonIntField("n", 7));
  Log.emit("test.event2");
  EXPECT_EQ(Log.lastSeq(), Base + 2);

  std::vector<LogEvent> All = Log.since(Base);
  ASSERT_EQ(All.size(), 2u);
  EXPECT_EQ(All[0].Type, "test.event");
  EXPECT_EQ(All[0].Seq, Base + 1);
  EXPECT_LE(All[0].TimeNs, All[1].TimeNs);
  // Each event renders as one valid JSON object; the array form is valid
  // too (it is embedded verbatim into the QUERY_STATS response).
  for (const LogEvent &E : All)
    EXPECT_TRUE(validateJson(E.toJson()).hasValue()) << E.toJson();
  EXPECT_NE(All[0].toJson().find("\"why\": \"because\""), std::string::npos);
  EXPECT_NE(All[0].toJson().find("\"n\": 7"), std::string::npos);
  EXPECT_TRUE(validateJson(EventLog::renderArray(All)).hasValue());
  // The incremental tail skips already-seen events.
  std::vector<LogEvent> Tail = Log.since(Base + 1);
  ASSERT_EQ(Tail.size(), 1u);
  EXPECT_EQ(Tail[0].Type, "test.event2");
  EXPECT_TRUE(Log.since(Base + 2).empty());

  // The ring drops oldest events but sequence numbering keeps counting.
  Log.setCapacity(4);
  for (int I = 0; I != 10; ++I)
    Log.emit("test.flood");
  std::vector<LogEvent> Kept = Log.since(0);
  ASSERT_EQ(Kept.size(), 4u);
  EXPECT_EQ(Kept.back().Seq, Base + 12);
  EXPECT_EQ(Kept.front().Seq, Base + 9);
  EXPECT_EQ(Log.lastSeq(), Base + 12);

  Log.setCapacity(OldCapacity);
  Log.clear();
}

TEST(EventLogTest, FileSinkAppendsJsonLines) {
  EventLog &Log = EventLog::instance();
  Log.clear();
  std::string Path =
      testing::TempDir() + "/gprof_eventlog_" + std::to_string(getpid());
  std::remove(Path.c_str());

  ASSERT_FALSE(Log.setSinkFile(Path));
  Log.emit("test.sink", jsonIntField("a", 1));
  Log.emit("test.sink", jsonStringField("b", "two\nlines"));
  Log.closeSink();
  Log.emit("test.unsinked"); // After closeSink: must not reach the file.

  std::string Text = cantFail(readFileText(Path));
  size_t Lines = 0;
  for (size_t Pos = 0; Pos < Text.size();) {
    size_t End = Text.find('\n', Pos);
    ASSERT_NE(End, std::string::npos) << "sink lines end in newline";
    std::string Line = Text.substr(Pos, End - Pos);
    EXPECT_TRUE(validateJson(Line).hasValue()) << Line;
    ++Lines;
    Pos = End + 1;
  }
  EXPECT_EQ(Lines, 2u);
  EXPECT_NE(Text.find("\"event\": \"test.sink\""), std::string::npos);
  EXPECT_EQ(Text.find("test.unsinked"), std::string::npos);
  std::remove(Path.c_str());
  Log.clear();
}

//===----------------------------------------------------------------------===//
// TraceWriter
//===----------------------------------------------------------------------===//

TEST(TraceWriterTest, RoundTripsThroughValidator) {
  TraceWriter W;
  W.setProcessName("test-proc");
  W.addThreadName(0, "main");
  W.addThreadName(1, "worker-0");
  // Names needing escapes must survive the round trip.
  W.addCompleteEvent("phase \"one\"\n", "layer", 0, 1500, 2500);
  W.addCompleteEvent("phase.two", "layer", 1, 4000, 1000);

  std::string Json = W.render();
  auto Stats = validateTraceJson(Json);
  ASSERT_TRUE(Stats.hasValue()) << Stats.message();
  // 2 complete + 2 thread_name + 1 process_name.
  EXPECT_EQ(Stats->Events, 5u);
  EXPECT_EQ(Stats->CompleteEvents, 2u);
  EXPECT_EQ(Stats->MetaEvents, 3u);
  EXPECT_EQ(Stats->NameCounts.at("thread_name"), 2u);
  EXPECT_EQ(Stats->NameCounts.at("process_name"), 1u);
  EXPECT_EQ(Stats->NameCounts.at("phase.two"), 1u);
  EXPECT_EQ(Stats->Tids.count(0), 1u);
  EXPECT_EQ(Stats->Tids.count(1), 1u);
  // ns precision carried as fractional microseconds.
  EXPECT_NE(Json.find("\"ts\":1.500"), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"dur\":2.500"), std::string::npos) << Json;
}

TEST(TraceWriterTest, ValidatorRejectsMalformedDocuments) {
  // Syntax errors.
  EXPECT_FALSE(validateJson("{\"a\": }").hasValue());
  EXPECT_FALSE(validateJson("{\"a\": 1} trailing").hasValue());
  EXPECT_FALSE(validateJson("{\"a\": \"unterminated}").hasValue());
  EXPECT_FALSE(validateJson("[1, 2,]").hasValue());
  // Valid JSON, wrong shape.
  EXPECT_FALSE(validateTraceJson("[1, 2]").hasValue());
  EXPECT_FALSE(validateTraceJson("{\"notTraceEvents\": []}").hasValue());
  EXPECT_FALSE(
      validateTraceJson("{\"traceEvents\": [{\"ph\": \"X\"}]}").hasValue())
      << "an event without a name must be rejected";
  EXPECT_FALSE(
      validateTraceJson("{\"traceEvents\": [{\"name\": \"n\"}]}").hasValue())
      << "an event without a phase must be rejected";
  // Minimal accepted document.
  auto Ok = validateTraceJson(
      "{\"traceEvents\": [{\"ph\": \"X\", \"name\": \"n\", \"tid\": 3}]}");
  ASSERT_TRUE(Ok.hasValue()) << Ok.message();
  EXPECT_EQ(Ok->CompleteEvents, 1u);
  EXPECT_EQ(Ok->Tids.count(3), 1u);
}

TEST(TraceWriterTest, FromTelemetryCarriesPerThreadTracks) {
  freshRegistry();
  Registry::instance().enableSpans(true);
  Registry::instance().setCurrentThreadName("main");
  {
    telemetry::Span S("layer.phase");
    ThreadPool Pool(2);
    for (int I = 0; I != 8; ++I)
      Pool.async([] { telemetry::Span J("layer.job"); });
    Pool.wait();
  }
  Registry::instance().enableSpans(false);

  TraceWriter W = TraceWriter::fromTelemetry("gprof");
  auto Stats = validateTraceJson(W.render());
  ASSERT_TRUE(Stats.hasValue()) << Stats.message();
  EXPECT_EQ(Stats->NameCounts.at("layer.phase"), 1u);
  EXPECT_EQ(Stats->NameCounts.at("layer.job"), 8u);
  // main + at least one worker means at least two distinct tracks.
  EXPECT_GE(Stats->Tids.size(), 2u);
}

//===----------------------------------------------------------------------===//
// Arc-table access statistics
//===----------------------------------------------------------------------===//

TEST(TelemetryTest, BsdArcTableStatsAreExact) {
  BsdArcTable T(0x1000, 0x2000);
  T.record(0x1100, 0x1200); // New arc, empty slot.
  T.record(0x1100, 0x1200); // Hit at chain head: one probe, no collision.
  T.record(0x1100, 0x1300); // Same site, new callee: collision + new arc.
  T.record(0x1100, 0x1200); // Hit behind head: collision + move-to-front.
  T.record(0x0500, 0x1200); // Call site outside [low, high): kept exactly.

  ArcTableStats S = T.stats();
  EXPECT_EQ(S.Records, 5u);
  EXPECT_EQ(S.NewArcs, 2u);
  EXPECT_EQ(S.OutsideRange, 1u);
  EXPECT_EQ(S.MoveToFront, 1u);
  EXPECT_EQ(S.Collisions, 2u);
  EXPECT_EQ(S.ChainProbes, 4u); // 0 + 1 + 1 + 2 probes.
  EXPECT_EQ(S.Dropped, 0u);
  EXPECT_EQ(S.Entries, 3u); // Two chained arcs + one outside.
  EXPECT_EQ(S.SlotsUsed, 1u);
  EXPECT_EQ(S.SlotCapacity, 0x1000u);

  T.reset();
  EXPECT_EQ(T.stats().Records, 0u);
  EXPECT_EQ(T.stats().Entries, 0u);
}

TEST(TelemetryTest, ArcTableStatsAgreeOnRecordsAndArcs) {
  // All three recorders must agree on the data-derived counts for the
  // same call sequence (probe behaviour legitimately differs).
  BsdArcTable Bsd(0x1000, 0x2000);
  OpenAddressingArcTable Open;
  StdMapArcTable Map;
  for (ArcRecorder *T :
       std::vector<ArcRecorder *>{&Bsd, &Open, &Map}) {
    for (int I = 0; I != 50; ++I)
      T->record(0x1100 + (I % 5) * 8, 0x1800 + (I % 3) * 16);
    ArcTableStats S = T->stats();
    EXPECT_EQ(S.Records, 50u);
    EXPECT_EQ(S.NewArcs, 15u);
    EXPECT_EQ(S.Entries, 15u);
  }
}

TEST(TelemetryTest, MonitorPublishesRuntimeCounters) {
  freshRegistry();
  MonitorOptions MO;
  Monitor Mon(0x1000, 0x2000, MO);
  Mon.onCall(0x1100, 0x1200);
  Mon.onCall(0x1100, 0x1200);
  Mon.onCall(0x1104, 0x1300);
  Mon.onTick(0x1150);
  Mon.onTick(0x1250);
  Mon.publishTelemetry();

  auto Counters = counterSnapshot();
  EXPECT_EQ(Counters.at("runtime.mcount.records"), 3u);
  EXPECT_EQ(Counters.at("runtime.mcount.new_arcs"), 2u);
  EXPECT_EQ(Counters.at("runtime.hist.ticks"), 2u);
  EXPECT_EQ(Counters.at("runtime.arcs.overflowed"), 0u);
}

//===----------------------------------------------------------------------===//
// The determinism contract: pipeline counters are thread-count-invariant
//===----------------------------------------------------------------------===//

/// Compiles and profiles one corpus program under the golden-test
/// settings (mirrors determinism_test.cpp).
void runCorpusProgram(const std::string &Name, SymbolTable &Syms,
                      ProfileData &Data) {
  std::string Path = std::string(TL_CORPUS_DIR) + "/" + Name;
  std::string Source = cantFail(readFileText(Path));
  CodeGenOptions CG;
  CG.EnableProfiling = true;
  Image Img = compileTLOrDie(Source, CG);
  Monitor Mon(Img.lowPc(), Img.highPc());
  VMOptions VO;
  VO.CyclesPerTick = 997;
  VM Machine(Img, VO);
  Machine.setHooks(&Mon);
  cantFail(Machine.run());
  Data = cantFail(readGmon(writeGmon(Mon.finish())));
  Syms = SymbolTable::fromImage(Img);
}

/// Analyzes \p Data at 1, 2 and 8 threads and expects the full counter
/// snapshot to be identical each time — with spans enabled, so the
/// timing machinery cannot perturb the counts either.
void expectCountersThreadInvariant(const SymbolTable &Syms,
                                   const ProfileData &Data) {
  std::map<std::string, uint64_t> Reference;
  for (unsigned Threads : {1u, 2u, 8u}) {
    freshRegistry();
    Registry::instance().enableSpans(true);
    AnalyzerOptions Opts;
    Opts.Threads = Threads;
    cantFail(Analyzer(Syms, Opts).analyze(Data));
    Registry::instance().enableSpans(false);
    std::map<std::string, uint64_t> Snap = counterSnapshot();
    EXPECT_GT(Snap.at("analyzer.runs"), 0u);
    EXPECT_GT(Snap.at("analyzer.symbolize.raw_records"), 0u);
    // The phase-latency histograms recorded during the same run live in
    // their own namespace: populated, but invisible to the counter
    // snapshot whose invariance this test pins.
    uint64_t PhaseLatencies = 0;
    for (const telemetry::DurationHistogram *H :
         Registry::instance().histograms())
      if (H->name().rfind("analyzer.phase.latency.", 0) == 0)
        PhaseLatencies += H->snapshot().count();
    EXPECT_GT(PhaseLatencies, 0u);
    EXPECT_EQ(Snap.count("analyzer.phase.latency.propagate"), 0u);
    if (Threads == 1)
      Reference = std::move(Snap);
    else
      EXPECT_EQ(Snap, Reference)
          << "counters diverged at Threads = " << Threads;
  }
  ASSERT_FALSE(Reference.empty());
}

TEST(TelemetryDeterminismTest, AnalyzerCountersPrimes) {
  SymbolTable Syms;
  ProfileData Data;
  runCorpusProgram("primes.tl", Syms, Data);
  expectCountersThreadInvariant(Syms, Data);
}

TEST(TelemetryDeterminismTest, AnalyzerCountersCalculatorWithCycle) {
  SymbolTable Syms;
  ProfileData Data;
  runCorpusProgram("calculator.tl", Syms, Data);
  expectCountersThreadInvariant(Syms, Data);
}

} // namespace
