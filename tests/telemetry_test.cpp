//===- tests/telemetry_test.cpp - The telemetry layer's own tests ---------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the observability substrate: registry semantics (counters,
/// gauges, reset), span recording across thread-pool workers (the per-
/// thread buffers run under TSan via GPROF_SANITIZE=thread), the Chrome
/// trace writer round-tripped through its own validator, and the central
/// promise of docs/TELEMETRY.md — every Kind::Counter value produced by
/// the analysis pipeline is identical at any thread count.
///
//===----------------------------------------------------------------------===//

#include "core/Analyzer.h"
#include "gmon/GmonFile.h"
#include "runtime/ArcTable.h"
#include "runtime/Monitor.h"
#include "support/FileUtils.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"
#include "support/TraceWriter.h"
#include "vm/CodeGen.h"
#include "vm/VM.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

using namespace gprof;
using telemetry::Kind;
using telemetry::Metric;
using telemetry::Registry;
using telemetry::SpanRecord;

namespace {

/// Every test shares the process-wide registry, so each starts from a
/// clean slate: values zeroed, spans dropped, span recording off.
void freshRegistry() {
  Registry::instance().enableSpans(false);
  Registry::instance().resetValues();
}

/// Snapshot of every Kind::Counter value, keyed by name.  Gauges are
/// deliberately excluded: they record scheduling facts and carry no
/// cross-thread-count guarantee.
std::map<std::string, uint64_t> counterSnapshot() {
  std::map<std::string, uint64_t> Out;
  for (const Metric *M : Registry::instance().metrics())
    if (M->kind() == Kind::Counter)
      Out[M->name()] = M->value();
  return Out;
}

TEST(TelemetryTest, CounterAndGaugeBasics) {
  freshRegistry();
  Metric &C = telemetry::counter("test.basics.counter");
  C.add(3);
  C.add(4);
  EXPECT_EQ(C.value(), 7u);
  // Same name, same object.
  EXPECT_EQ(&telemetry::counter("test.basics.counter"), &C);
  // A name keeps its first-registered kind.
  EXPECT_EQ(Registry::instance().gauge("test.basics.counter").kind(),
            Kind::Counter);

  Metric &G = telemetry::gauge("test.basics.gauge");
  G.set(10);
  G.max(5); // Lower: no effect.
  EXPECT_EQ(G.value(), 10u);
  G.max(25);
  EXPECT_EQ(G.value(), 25u);
  EXPECT_EQ(G.kind(), Kind::Gauge);
}

TEST(TelemetryTest, MetricsAreSortedAndSurviveReset) {
  freshRegistry();
  Metric &B = telemetry::counter("test.sort.b");
  telemetry::counter("test.sort.a").add(1);
  B.add(2);

  std::vector<const Metric *> All = Registry::instance().metrics();
  for (size_t I = 1; I < All.size(); ++I)
    EXPECT_LT(All[I - 1]->name(), All[I]->name());

  Registry::instance().resetValues();
  // Values are zeroed but the registration (and the reference) survives.
  EXPECT_EQ(B.value(), 0u);
  B.add(5);
  EXPECT_EQ(telemetry::counter("test.sort.b").value(), 5u);
}

TEST(TelemetryTest, DisabledSpansRecordNothing) {
  freshRegistry();
  {
    telemetry::Span S("test.disabled");
    (void)S;
  }
  EXPECT_TRUE(Registry::instance().collectSpans().empty());
}

TEST(TelemetryTest, SpansRecordAcrossPoolThreads) {
  // The interesting case for TSan: pool workers write their own buffers
  // while the main thread enables/collects.
  freshRegistry();
  Registry::instance().enableSpans(true);
  Registry::instance().setCurrentThreadName("main");
  {
    telemetry::Span Outer("test.outer");
    ThreadPool Pool(4);
    for (int I = 0; I != 32; ++I)
      Pool.async([] { telemetry::Span Inner("test.inner"); });
    Pool.wait();
  }
  Registry::instance().enableSpans(false);

  std::vector<SpanRecord> Spans = Registry::instance().collectSpans();
  size_t Outer = 0, Inner = 0, PoolJobs = 0;
  for (const SpanRecord &S : Spans) {
    EXPECT_LE(S.BeginNs, S.EndNs);
    Outer += S.Name == "test.outer";
    Inner += S.Name == "test.inner";
    PoolJobs += S.Name == "pool.job"; // The pool wraps each job itself.
  }
  EXPECT_EQ(Outer, 1u);
  EXPECT_EQ(Inner, 32u);
  EXPECT_EQ(PoolJobs, 32u);
  // Sorted by (tid, begin).
  for (size_t I = 1; I < Spans.size(); ++I) {
    EXPECT_LE(Spans[I - 1].Tid, Spans[I].Tid);
    if (Spans[I - 1].Tid == Spans[I].Tid)
      EXPECT_LE(Spans[I - 1].BeginNs, Spans[I].BeginNs);
  }
  // The main thread kept its name; workers registered theirs.
  bool SawMain = false, SawWorker = false;
  for (const auto &[Tid, Name] : Registry::instance().threadNames()) {
    SawMain |= Name == "main";
    SawWorker |= Name.rfind("worker-", 0) == 0;
  }
  EXPECT_TRUE(SawMain);
  EXPECT_TRUE(SawWorker);
}

TEST(TelemetryTest, StatsJsonIsValidAndCarriesKinds) {
  freshRegistry();
  telemetry::counter("test.json.counter").add(42);
  telemetry::gauge("test.json.gauge").set(7);

  std::string Json = Registry::instance().renderStatsJson("telemetry_test");
  auto Consumed = validateJson(Json);
  ASSERT_TRUE(Consumed.hasValue()) << Consumed.message();
  EXPECT_NE(Json.find("\"bench\": \"telemetry_test\""), std::string::npos);
  EXPECT_NE(Json.find("{\"metric\": \"test.json.counter\", "
                      "\"kind\": \"counter\", \"value\": 42}"),
            std::string::npos)
      << Json;
  EXPECT_NE(Json.find("{\"metric\": \"test.json.gauge\", "
                      "\"kind\": \"gauge\", \"value\": 7}"),
            std::string::npos)
      << Json;
}

//===----------------------------------------------------------------------===//
// TraceWriter
//===----------------------------------------------------------------------===//

TEST(TraceWriterTest, RoundTripsThroughValidator) {
  TraceWriter W;
  W.setProcessName("test-proc");
  W.addThreadName(0, "main");
  W.addThreadName(1, "worker-0");
  // Names needing escapes must survive the round trip.
  W.addCompleteEvent("phase \"one\"\n", "layer", 0, 1500, 2500);
  W.addCompleteEvent("phase.two", "layer", 1, 4000, 1000);

  std::string Json = W.render();
  auto Stats = validateTraceJson(Json);
  ASSERT_TRUE(Stats.hasValue()) << Stats.message();
  // 2 complete + 2 thread_name + 1 process_name.
  EXPECT_EQ(Stats->Events, 5u);
  EXPECT_EQ(Stats->CompleteEvents, 2u);
  EXPECT_EQ(Stats->MetaEvents, 3u);
  EXPECT_EQ(Stats->NameCounts.at("thread_name"), 2u);
  EXPECT_EQ(Stats->NameCounts.at("process_name"), 1u);
  EXPECT_EQ(Stats->NameCounts.at("phase.two"), 1u);
  EXPECT_EQ(Stats->Tids.count(0), 1u);
  EXPECT_EQ(Stats->Tids.count(1), 1u);
  // ns precision carried as fractional microseconds.
  EXPECT_NE(Json.find("\"ts\":1.500"), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"dur\":2.500"), std::string::npos) << Json;
}

TEST(TraceWriterTest, ValidatorRejectsMalformedDocuments) {
  // Syntax errors.
  EXPECT_FALSE(validateJson("{\"a\": }").hasValue());
  EXPECT_FALSE(validateJson("{\"a\": 1} trailing").hasValue());
  EXPECT_FALSE(validateJson("{\"a\": \"unterminated}").hasValue());
  EXPECT_FALSE(validateJson("[1, 2,]").hasValue());
  // Valid JSON, wrong shape.
  EXPECT_FALSE(validateTraceJson("[1, 2]").hasValue());
  EXPECT_FALSE(validateTraceJson("{\"notTraceEvents\": []}").hasValue());
  EXPECT_FALSE(
      validateTraceJson("{\"traceEvents\": [{\"ph\": \"X\"}]}").hasValue())
      << "an event without a name must be rejected";
  EXPECT_FALSE(
      validateTraceJson("{\"traceEvents\": [{\"name\": \"n\"}]}").hasValue())
      << "an event without a phase must be rejected";
  // Minimal accepted document.
  auto Ok = validateTraceJson(
      "{\"traceEvents\": [{\"ph\": \"X\", \"name\": \"n\", \"tid\": 3}]}");
  ASSERT_TRUE(Ok.hasValue()) << Ok.message();
  EXPECT_EQ(Ok->CompleteEvents, 1u);
  EXPECT_EQ(Ok->Tids.count(3), 1u);
}

TEST(TraceWriterTest, FromTelemetryCarriesPerThreadTracks) {
  freshRegistry();
  Registry::instance().enableSpans(true);
  Registry::instance().setCurrentThreadName("main");
  {
    telemetry::Span S("layer.phase");
    ThreadPool Pool(2);
    for (int I = 0; I != 8; ++I)
      Pool.async([] { telemetry::Span J("layer.job"); });
    Pool.wait();
  }
  Registry::instance().enableSpans(false);

  TraceWriter W = TraceWriter::fromTelemetry("gprof");
  auto Stats = validateTraceJson(W.render());
  ASSERT_TRUE(Stats.hasValue()) << Stats.message();
  EXPECT_EQ(Stats->NameCounts.at("layer.phase"), 1u);
  EXPECT_EQ(Stats->NameCounts.at("layer.job"), 8u);
  // main + at least one worker means at least two distinct tracks.
  EXPECT_GE(Stats->Tids.size(), 2u);
}

//===----------------------------------------------------------------------===//
// Arc-table access statistics
//===----------------------------------------------------------------------===//

TEST(TelemetryTest, BsdArcTableStatsAreExact) {
  BsdArcTable T(0x1000, 0x2000);
  T.record(0x1100, 0x1200); // New arc, empty slot.
  T.record(0x1100, 0x1200); // Hit at chain head: one probe, no collision.
  T.record(0x1100, 0x1300); // Same site, new callee: collision + new arc.
  T.record(0x1100, 0x1200); // Hit behind head: collision + move-to-front.
  T.record(0x0500, 0x1200); // Call site outside [low, high): kept exactly.

  ArcTableStats S = T.stats();
  EXPECT_EQ(S.Records, 5u);
  EXPECT_EQ(S.NewArcs, 2u);
  EXPECT_EQ(S.OutsideRange, 1u);
  EXPECT_EQ(S.MoveToFront, 1u);
  EXPECT_EQ(S.Collisions, 2u);
  EXPECT_EQ(S.ChainProbes, 4u); // 0 + 1 + 1 + 2 probes.
  EXPECT_EQ(S.Dropped, 0u);
  EXPECT_EQ(S.Entries, 3u); // Two chained arcs + one outside.
  EXPECT_EQ(S.SlotsUsed, 1u);
  EXPECT_EQ(S.SlotCapacity, 0x1000u);

  T.reset();
  EXPECT_EQ(T.stats().Records, 0u);
  EXPECT_EQ(T.stats().Entries, 0u);
}

TEST(TelemetryTest, ArcTableStatsAgreeOnRecordsAndArcs) {
  // All three recorders must agree on the data-derived counts for the
  // same call sequence (probe behaviour legitimately differs).
  BsdArcTable Bsd(0x1000, 0x2000);
  OpenAddressingArcTable Open;
  StdMapArcTable Map;
  for (ArcRecorder *T :
       std::vector<ArcRecorder *>{&Bsd, &Open, &Map}) {
    for (int I = 0; I != 50; ++I)
      T->record(0x1100 + (I % 5) * 8, 0x1800 + (I % 3) * 16);
    ArcTableStats S = T->stats();
    EXPECT_EQ(S.Records, 50u);
    EXPECT_EQ(S.NewArcs, 15u);
    EXPECT_EQ(S.Entries, 15u);
  }
}

TEST(TelemetryTest, MonitorPublishesRuntimeCounters) {
  freshRegistry();
  MonitorOptions MO;
  Monitor Mon(0x1000, 0x2000, MO);
  Mon.onCall(0x1100, 0x1200);
  Mon.onCall(0x1100, 0x1200);
  Mon.onCall(0x1104, 0x1300);
  Mon.onTick(0x1150);
  Mon.onTick(0x1250);
  Mon.publishTelemetry();

  auto Counters = counterSnapshot();
  EXPECT_EQ(Counters.at("runtime.mcount.records"), 3u);
  EXPECT_EQ(Counters.at("runtime.mcount.new_arcs"), 2u);
  EXPECT_EQ(Counters.at("runtime.hist.ticks"), 2u);
  EXPECT_EQ(Counters.at("runtime.arcs.overflowed"), 0u);
}

//===----------------------------------------------------------------------===//
// The determinism contract: pipeline counters are thread-count-invariant
//===----------------------------------------------------------------------===//

/// Compiles and profiles one corpus program under the golden-test
/// settings (mirrors determinism_test.cpp).
void runCorpusProgram(const std::string &Name, SymbolTable &Syms,
                      ProfileData &Data) {
  std::string Path = std::string(TL_CORPUS_DIR) + "/" + Name;
  std::string Source = cantFail(readFileText(Path));
  CodeGenOptions CG;
  CG.EnableProfiling = true;
  Image Img = compileTLOrDie(Source, CG);
  Monitor Mon(Img.lowPc(), Img.highPc());
  VMOptions VO;
  VO.CyclesPerTick = 997;
  VM Machine(Img, VO);
  Machine.setHooks(&Mon);
  cantFail(Machine.run());
  Data = cantFail(readGmon(writeGmon(Mon.finish())));
  Syms = SymbolTable::fromImage(Img);
}

/// Analyzes \p Data at 1, 2 and 8 threads and expects the full counter
/// snapshot to be identical each time — with spans enabled, so the
/// timing machinery cannot perturb the counts either.
void expectCountersThreadInvariant(const SymbolTable &Syms,
                                   const ProfileData &Data) {
  std::map<std::string, uint64_t> Reference;
  for (unsigned Threads : {1u, 2u, 8u}) {
    freshRegistry();
    Registry::instance().enableSpans(true);
    AnalyzerOptions Opts;
    Opts.Threads = Threads;
    cantFail(Analyzer(Syms, Opts).analyze(Data));
    Registry::instance().enableSpans(false);
    std::map<std::string, uint64_t> Snap = counterSnapshot();
    EXPECT_GT(Snap.at("analyzer.runs"), 0u);
    EXPECT_GT(Snap.at("analyzer.symbolize.raw_records"), 0u);
    if (Threads == 1)
      Reference = std::move(Snap);
    else
      EXPECT_EQ(Snap, Reference)
          << "counters diverged at Threads = " << Threads;
  }
  ASSERT_FALSE(Reference.empty());
}

TEST(TelemetryDeterminismTest, AnalyzerCountersPrimes) {
  SymbolTable Syms;
  ProfileData Data;
  runCorpusProgram("primes.tl", Syms, Data);
  expectCountersThreadInvariant(Syms, Data);
}

TEST(TelemetryDeterminismTest, AnalyzerCountersCalculatorWithCycle) {
  SymbolTable Syms;
  ProfileData Data;
  runCorpusProgram("calculator.tl", Syms, Data);
  expectCountersThreadInvariant(Syms, Data);
}

} // namespace
