//===- tests/runtime_test.cpp - Unit tests for the monitoring runtime -----===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "runtime/ArcTable.h"
#include "runtime/Monitor.h"
#include "support/Random.h"
#include "vm/CodeGen.h"
#include "vm/VM.h"

#include <gtest/gtest.h>

#include <map>

using namespace gprof;

namespace {

/// Reference model for arc recording.
using RefMap = std::map<std::pair<Address, Address>, uint64_t>;

RefMap toMap(const std::vector<ArcRecord> &Arcs) {
  RefMap M;
  for (const ArcRecord &R : Arcs)
    M[{R.FromPc, R.SelfPc}] += R.Count;
  return M;
}

} // namespace

//===----------------------------------------------------------------------===//
// Arc tables
//===----------------------------------------------------------------------===//

TEST(BsdArcTableTest, RecordsAndMerges) {
  BsdArcTable T(100, 200);
  T.record(110, 150);
  T.record(110, 150);
  T.record(111, 150);
  auto M = toMap(T.snapshot());
  EXPECT_EQ((M[{110, 150}]), 2u);
  EXPECT_EQ((M[{111, 150}]), 1u);
}

TEST(BsdArcTableTest, MultiCalleeCallSiteChains) {
  // The paper's "functional variable" case: one call site, two callees.
  BsdArcTable T(100, 200);
  T.record(120, 150);
  T.record(120, 160);
  T.record(120, 150);
  auto M = toMap(T.snapshot());
  EXPECT_EQ((M[{120, 150}]), 2u);
  EXPECT_EQ((M[{120, 160}]), 1u);
}

TEST(BsdArcTableTest, MoveToFrontKeepsCountsExact) {
  // The move-to-front relink must never lose or double-count an entry,
  // whatever the hit pattern: alternate two callees (the worst case — the
  // chain reorders on every other record), then hammer a third.
  BsdArcTable T(100, 200);
  for (int I = 0; I != 10; ++I) {
    T.record(130, 150);
    T.record(130, 160);
  }
  for (int I = 0; I != 5; ++I)
    T.record(130, 170);
  T.record(130, 150);
  auto M = toMap(T.snapshot());
  EXPECT_EQ((M[{130, 150}]), 11u);
  EXPECT_EQ((M[{130, 160}]), 10u);
  EXPECT_EQ((M[{130, 170}]), 5u);
  EXPECT_EQ(T.snapshot().size(), 3u);
}

TEST(BsdArcTableTest, OutsideCallSitesKeptExactly) {
  BsdArcTable T(100, 200);
  T.record(0, 150);    // Spontaneous (below range).
  T.record(5000, 160); // Above range.
  auto M = toMap(T.snapshot());
  EXPECT_EQ((M[{0, 150}]), 1u);
  EXPECT_EQ((M[{5000, 160}]), 1u);
}

TEST(BsdArcTableTest, DensityMergesNeighbouringSites) {
  // With FromsDensity 4, call sites 112 and 113 share a froms slot and are
  // condensed to the slot base address 112 — the historical trade-off.
  BsdArcTable T(100, 200, /*FromsDensity=*/4);
  T.record(112, 150);
  T.record(113, 150);
  auto M = toMap(T.snapshot());
  EXPECT_EQ((M[{112, 150}]), 2u);
}

TEST(BsdArcTableTest, OverflowStopsRecording) {
  BsdArcTable T(0, 1000, 1, /*TosLimit=*/4);
  for (Address A = 0; A != 100; ++A)
    T.record(A, 500 + A);
  EXPECT_TRUE(T.overflowed());
  // Some arcs were recorded before the limit hit.
  EXPECT_GE(T.snapshot().size(), 3u);
  EXPECT_LT(T.snapshot().size(), 100u);
}

TEST(BsdArcTableTest, ResetClears) {
  BsdArcTable T(0, 100);
  T.record(10, 50);
  T.record(500, 50);
  T.reset();
  EXPECT_TRUE(T.snapshot().empty());
  EXPECT_FALSE(T.overflowed());
}

TEST(OpenAddressingTest, GrowsAndKeepsCounts) {
  OpenAddressingArcTable T(16);
  SplitMix64 Rng(3);
  RefMap Ref;
  for (int I = 0; I != 5000; ++I) {
    Address From = Rng.nextBelow(300);
    Address Self = 1000 + Rng.nextBelow(50);
    T.record(From, Self);
    ++Ref[{From, Self}];
  }
  EXPECT_EQ(toMap(T.snapshot()), Ref);
}

TEST(OpenAddressingTest, GrowthStaysGeometric) {
  // grow() must double from the *current* size: after ingesting N
  // distinct arcs the table is a power of two within the 3/4 load bound,
  // never rebuilt at its initial capacity.  A regression to fixed-size
  // rebuilds makes large re-ingests quadratic and blows this bound.
  constexpr size_t N = 100000;
  OpenAddressingArcTable T(16);
  for (size_t I = 0; I != N; ++I)
    T.record(static_cast<Address>(I), static_cast<Address>(I * 7 + 1));
  auto Snap = T.snapshot();
  EXPECT_EQ(Snap.size(), N);
  // Slots are (from, self, count) triples; capacity stays within 8/3 of
  // the live entries (doubling at 75% load keeps load >= 37.5%).
  size_t SlotBytes = 3 * sizeof(uint64_t);
  EXPECT_LE(T.memoryBytes(), (N * 8 + 2) / 3 * SlotBytes);
}

TEST(StdMapArcTableTest, MatchesReference) {
  StdMapArcTable T;
  T.record(1, 2);
  T.record(1, 2);
  T.record(3, 4);
  auto M = toMap(T.snapshot());
  EXPECT_EQ((M[{1, 2}]), 2u);
  EXPECT_EQ((M[{3, 4}]), 1u);
}

/// Property: all three tables agree on random call streams.
class ArcTableAgreementTest : public testing::TestWithParam<uint64_t> {};

TEST_P(ArcTableAgreementTest, AllImplementationsAgree) {
  BsdArcTable Bsd(0, 10000);
  OpenAddressingArcTable Open;
  StdMapArcTable Map;
  SplitMix64 Rng(GetParam());
  for (int I = 0; I != 20000; ++I) {
    // Mostly in-range call sites; a few outside.
    Address From = Rng.nextBool(0.05) ? 20000 + Rng.nextBelow(100)
                                      : Rng.nextBelow(10000);
    Address Self = Rng.nextBelow(64) * 128;
    Bsd.record(From, Self);
    Open.record(From, Self);
    Map.record(From, Self);
  }
  RefMap Ref = toMap(Map.snapshot());
  EXPECT_EQ(toMap(Bsd.snapshot()), Ref);
  EXPECT_EQ(toMap(Open.snapshot()), Ref);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArcTableAgreementTest,
                         testing::Range<uint64_t>(0, 8));

//===----------------------------------------------------------------------===//
// Monitor
//===----------------------------------------------------------------------===//

namespace {

const char *MonitoredProgram = R"(
  fn leaf(x) { return x * x; }
  fn driver(n) {
    var total = 0;
    var i = 0;
    while (i < n) {
      total = total + leaf(i);
      i = i + 1;
    }
    return total;
  }
  fn main() { return driver(50); }
)";

Image profiledImage(const char *Src = MonitoredProgram) {
  CodeGenOptions CG;
  CG.EnableProfiling = true;
  return compileTLOrDie(Src, CG);
}

} // namespace

TEST(MonitorTest, CollectsArcsAndSamples) {
  Image Img = profiledImage();
  Monitor Mon(Img.lowPc(), Img.highPc());
  VMOptions VO;
  VO.CyclesPerTick = 100;
  VM Machine(Img, VO);
  Machine.setHooks(&Mon);
  RunResult R = cantFail(Machine.run());

  ProfileData Data = Mon.finish();
  EXPECT_EQ(Data.Hist.totalSamples(), R.Ticks);
  EXPECT_FALSE(Data.ArcTableOverflowed);

  // Arc counts: driver->leaf 50 times, main->driver once, and main's
  // spontaneous activation.
  Address LeafAddr = 0, DriverAddr = 0, MainAddr = 0;
  for (const FuncInfo &F : Img.Functions) {
    if (F.Name == "leaf")
      LeafAddr = F.Addr;
    if (F.Name == "driver")
      DriverAddr = F.Addr;
    if (F.Name == "main")
      MainAddr = F.Addr;
  }
  EXPECT_EQ(Data.callsInto(LeafAddr), 50u);
  EXPECT_EQ(Data.callsInto(DriverAddr), 1u);
  EXPECT_EQ(Data.callsInto(MainAddr), 1u);
}

TEST(MonitorTest, ControlPausesCollection) {
  Image Img = profiledImage();
  Monitor Mon(Img.lowPc(), Img.highPc());
  VMOptions VO;
  VO.CyclesPerTick = 100;
  VM Machine(Img, VO);
  Machine.setHooks(&Mon);

  Mon.control(false);
  cantFail(Machine.run());
  ProfileData Paused = Mon.extract();
  EXPECT_TRUE(Paused.Arcs.empty());
  EXPECT_EQ(Paused.Hist.totalSamples(), 0u);

  Mon.control(true);
  cantFail(Machine.run());
  ProfileData Running = Mon.extract();
  EXPECT_FALSE(Running.Arcs.empty());
  EXPECT_GT(Running.Hist.totalSamples(), 0u);
}

TEST(MonitorTest, ResetClearsData) {
  Image Img = profiledImage();
  Monitor Mon(Img.lowPc(), Img.highPc());
  VM Machine(Img);
  Machine.setHooks(&Mon);
  cantFail(Machine.run());
  EXPECT_FALSE(Mon.extract().Arcs.empty());
  Mon.reset();
  EXPECT_TRUE(Mon.extract().Arcs.empty());
  EXPECT_EQ(Mon.extract().Hist.totalSamples(), 0u);
}

TEST(MonitorTest, ExtractDoesNotDisturbCollection) {
  Image Img = profiledImage();
  Monitor Mon(Img.lowPc(), Img.highPc());
  VM Machine(Img);
  Machine.setHooks(&Mon);
  cantFail(Machine.run());
  ProfileData First = Mon.extract();
  cantFail(Machine.run());
  ProfileData Second = Mon.extract();
  // Second run doubled the arc counts.
  ASSERT_FALSE(First.Arcs.empty());
  uint64_t FirstTotal = 0, SecondTotal = 0;
  for (const ArcRecord &R : First.Arcs)
    FirstTotal += R.Count;
  for (const ArcRecord &R : Second.Arcs)
    SecondTotal += R.Count;
  EXPECT_EQ(SecondTotal, 2 * FirstTotal);
}

TEST(MonitorTest, SelectiveDisabling) {
  Image Img = profiledImage();
  {
    MonitorOptions MO;
    MO.RecordArcs = false;
    Monitor Mon(Img.lowPc(), Img.highPc(), MO);
    VMOptions VO;
    VO.CyclesPerTick = 100;
    VM Machine(Img, VO);
    Machine.setHooks(&Mon);
    cantFail(Machine.run());
    ProfileData D = Mon.finish();
    EXPECT_TRUE(D.Arcs.empty());
    EXPECT_GT(D.Hist.totalSamples(), 0u);
  }
  {
    MonitorOptions MO;
    MO.SampleHistogram = false;
    Monitor Mon(Img.lowPc(), Img.highPc(), MO);
    VM Machine(Img);
    Machine.setHooks(&Mon);
    cantFail(Machine.run());
    ProfileData D = Mon.finish();
    EXPECT_FALSE(D.Arcs.empty());
    EXPECT_EQ(D.Hist.totalSamples(), 0u);
  }
}

TEST(MonitorTest, TableKindsProduceSameArcs) {
  Image Img = profiledImage();
  RefMap Results[3];
  ArcTableKind Kinds[3] = {ArcTableKind::Bsd, ArcTableKind::OpenAddressing,
                           ArcTableKind::StdMap};
  for (int I = 0; I != 3; ++I) {
    MonitorOptions MO;
    MO.TableKind = Kinds[I];
    Monitor Mon(Img.lowPc(), Img.highPc(), MO);
    VM Machine(Img);
    Machine.setHooks(&Mon);
    cantFail(Machine.run());
    Results[I] = toMap(Mon.finish().Arcs);
  }
  EXPECT_EQ(Results[0], Results[2]);
  EXPECT_EQ(Results[1], Results[2]);
}

TEST(MonitorTest, OverflowFlagPropagates) {
  Image Img = profiledImage();
  MonitorOptions MO;
  MO.TosLimit = 1;
  Monitor Mon(Img.lowPc(), Img.highPc(), MO);
  VM Machine(Img);
  Machine.setHooks(&Mon);
  cantFail(Machine.run());
  EXPECT_TRUE(Mon.arcTableOverflowed());
  EXPECT_TRUE(Mon.finish().ArcTableOverflowed);
}

TEST(MonitorTest, HistogramBucketGranularity) {
  Image Img = profiledImage();
  MonitorOptions MO;
  MO.HistBucketSize = 8;
  Monitor Mon(Img.lowPc(), Img.highPc(), MO);
  VMOptions VO;
  VO.CyclesPerTick = 50;
  VM Machine(Img, VO);
  Machine.setHooks(&Mon);
  cantFail(Machine.run());
  ProfileData D = Mon.finish();
  EXPECT_EQ(D.Hist.bucketSize(), 8u);
  EXPECT_GT(D.Hist.totalSamples(), 0u);
}

TEST(MonitorTest, SamplesLandInsideExecutedFunctions) {
  Image Img = profiledImage();
  Monitor Mon(Img.lowPc(), Img.highPc());
  VMOptions VO;
  VO.CyclesPerTick = 25;
  VM Machine(Img, VO);
  Machine.setHooks(&Mon);
  cantFail(Machine.run());
  ProfileData D = Mon.finish();
  ASSERT_GT(D.Hist.totalSamples(), 0u);
  EXPECT_EQ(D.Hist.outOfRangeSamples(), 0u);
  // Every sampled bucket lies inside some function's range.
  for (size_t B = 0; B != D.Hist.numBuckets(); ++B) {
    if (D.Hist.bucketCount(B) == 0)
      continue;
    EXPECT_NE(Img.findFunctionContaining(D.Hist.bucketStart(B)), nullptr);
  }
}
