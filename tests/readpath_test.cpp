//===- tests/readpath_test.cpp - Zero-copy read path ----------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The zero-copy read path (docs/READPATH.md): MappedFile mapping and
/// fallback semantics under injected faults, a differential corpus
/// proving the in-place gmon parser bit-identical to the legacy
/// BinaryStream reference reader over every truncation cut and byte
/// mutation (strict and tolerant), and the flat symbol resolver and
/// open-addressing arc index against their historical behavior.
///
/// The ReadPathCorpusTest suite doubles as the ASan smoke body: the
/// in-place parser reads borrowed bytes with manual bounds checks, so
/// the corpus is exactly the input set where an off-by-one would touch
/// memory past the mapping (see gprof_asan_readpath_smoke in
/// tests/CMakeLists.txt).
///
//===----------------------------------------------------------------------===//

#include "core/SymbolTable.h"
#include "gmon/GmonFile.h"
#include "support/FaultInjection.h"
#include "support/FileUtils.h"
#include "support/MappedFile.h"
#include "support/Telemetry.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <string>

using namespace gprof;

namespace {

/// Every fixture disarms on teardown so a failing test cannot poison the
/// process-wide registry for its successors.
class FaultFixture : public ::testing::Test {
protected:
  void SetUp() override { fault::disarmAll(); }
  void TearDown() override { fault::disarmAll(); }
};

class MappedFileTest : public FaultFixture {};
class ReadPathCorpusTest : public FaultFixture {};
class ResolverTest : public ::testing::Test {};
class ArcIndexTest : public ::testing::Test {};

/// A fresh directory under the test temp dir, removed on destruction.
/// The pid is part of the path: the gprof_asan_readpath_smoke target
/// reruns these tests in a second process, and under `ctest -j` both
/// processes can hold the same test live at once — a shared path would
/// let one process's cleanup delete the other's files mid-test.
struct TempDir {
  explicit TempDir(const std::string &Name)
      : Path(testing::TempDir() + "/gprof_readpath_" +
             std::to_string(::getpid()) + "_" + Name) {
    std::filesystem::remove_all(Path);
    std::filesystem::create_directories(Path);
  }
  ~TempDir() { std::filesystem::remove_all(Path); }
  std::string Path;
};

/// Reference profile with a fully known serialization — the same shape
/// as the crash-safety corpus (tests/fault_test.cpp): 8 histogram
/// buckets with counts 1..8 and 5 arcs with distinct fields, so every
/// truncation point has a computable salvage prefix.
ProfileData makeRefData() {
  ProfileData D;
  D.TicksPerSecond = 100;
  D.RunCount = 3;
  D.Hist = Histogram(0, 64, 8);
  for (uint64_t B = 0; B != 8; ++B)
    for (uint64_t K = 0; K != B + 1; ++K)
      D.Hist.recordPc(B * 8);
  D.addArc(0x10, 0x100, 1);
  D.addArc(0x20, 0x100, 2);
  D.addArc(0x30, 0x200, 3);
  D.addArc(0x40, 0x200, 4);
  D.addArc(0x50, 0x300, 5);
  return D;
}

/// Runs one byte image through the reference reader and the in-place
/// reader under \p Tolerant and asserts bit-identical outcomes: same
/// success/failure, same error message, same salvage tallies, and a
/// byte-identical re-serialization of the recovered profile.
void expectReadersAgree(const std::vector<uint8_t> &Bytes, bool Tolerant,
                        const std::string &What) {
  GmonReadOptions Opts;
  Opts.Tolerant = Tolerant;
  GmonSalvage SRef, SNew;
  auto Ref = readGmonReference(Bytes, Opts, &SRef);
  auto New = readGmon(Bytes.data(), Bytes.size(), Opts, &SNew);
  ASSERT_EQ(static_cast<bool>(Ref), static_cast<bool>(New)) << What;
  if (!Ref) {
    auto RefErr = Ref.takeError();
    auto NewErr = New.takeError();
    EXPECT_EQ(RefErr.message(), NewErr.message()) << What;
    return;
  }
  EXPECT_EQ(writeGmon(*Ref), writeGmon(*New)) << What;
  EXPECT_EQ(SRef.Damaged, SNew.Damaged) << What;
  EXPECT_EQ(SRef.SalvagedBuckets, SNew.SalvagedBuckets) << What;
  EXPECT_EQ(SRef.DroppedBuckets, SNew.DroppedBuckets) << What;
  EXPECT_EQ(SRef.SalvagedArcs, SNew.SalvagedArcs) << What;
  EXPECT_EQ(SRef.DroppedArcs, SNew.DroppedArcs) << What;
  EXPECT_EQ(SRef.SalvagedContexts, SNew.SalvagedContexts) << What;
  EXPECT_EQ(SRef.DroppedContexts, SNew.DroppedContexts) << What;
  EXPECT_EQ(SRef.TrailingBytes, SNew.TrailingBytes) << What;
  EXPECT_EQ(SRef.Note, SNew.Note) << What;
}

/// makeRefData() plus a context tree: serializes as version 2 with one
/// extension section, covering the section plumbing and the node records
/// in both readers (same shape as tests/fault_test.cpp).
ProfileData makeRefDataWithContexts() {
  ProfileData D = makeRefData();
  std::vector<CctNode> T;
  T.push_back({CctRootParent, 0x10, 0x100, 1, 2});
  T.push_back({0, 0x110, 0x200, 3, 4});
  T.push_back({1, 0x210, 0x300, 5, 6});
  T.push_back({0, 0x120, 0x200, 7, 8});
  D.addContextTree(T);
  return D;
}

} // namespace

//===----------------------------------------------------------------------===//
// MappedFile
//===----------------------------------------------------------------------===//

TEST_F(MappedFileTest, MappingAndFallbackSeeIdenticalBytes) {
  TempDir Dir("mapped_basic");
  std::string Path = Dir.Path + "/blob.bin";
  std::vector<uint8_t> Bytes(8192);
  for (size_t I = 0; I != Bytes.size(); ++I)
    Bytes[I] = static_cast<uint8_t>(I * 7 + 3);
  ASSERT_FALSE(static_cast<bool>(writeFileBytes(Path, Bytes)));

  auto Mapped = MappedFile::open(Path);
  ASSERT_TRUE(static_cast<bool>(Mapped));
  EXPECT_TRUE(Mapped->isMapped());
  ASSERT_EQ(Mapped->size(), Bytes.size());
  EXPECT_EQ(std::vector<uint8_t>(Mapped->data(),
                                 Mapped->data() + Mapped->size()),
            Bytes);

  auto Fallback = MappedFile::open(Path, /*ForceReadFallback=*/true);
  ASSERT_TRUE(static_cast<bool>(Fallback));
  EXPECT_FALSE(Fallback->isMapped());
  ASSERT_EQ(Fallback->size(), Bytes.size());
  EXPECT_EQ(std::vector<uint8_t>(Fallback->data(),
                                 Fallback->data() + Fallback->size()),
            Bytes);
}

TEST_F(MappedFileTest, EmptyFileYieldsEmptyUnmappedView) {
  TempDir Dir("mapped_empty");
  std::string Path = Dir.Path + "/empty.bin";
  ASSERT_FALSE(static_cast<bool>(writeFileBytes(Path, {})));
  auto Map = MappedFile::open(Path);
  ASSERT_TRUE(static_cast<bool>(Map));
  EXPECT_EQ(Map->size(), 0u);
  EXPECT_FALSE(Map->isMapped());
}

TEST_F(MappedFileTest, MissingFileIsACleanError) {
  TempDir Dir("mapped_missing");
  auto Map = MappedFile::open(Dir.Path + "/nope.bin");
  ASSERT_FALSE(static_cast<bool>(Map));
  EXPECT_NE(Map.message().find("cannot open"), std::string::npos);
}

TEST_F(MappedFileTest, SharedFileReadFaultCoversTheZeroCopyPath) {
  TempDir Dir("mapped_readfault");
  std::string Path = Dir.Path + "/blob.bin";
  ASSERT_FALSE(static_cast<bool>(writeFileBytes(Path, {1, 2, 3})));
  fault::arm("file.read", 1);
  auto Map = MappedFile::open(Path);
  ASSERT_FALSE(static_cast<bool>(Map));
  EXPECT_NE(Map.message().find("file.read"), std::string::npos);
}

TEST_F(MappedFileTest, MmapFaultSurfacesAsErrorNotCrash) {
  TempDir Dir("mapped_mmapfault");
  std::string Path = Dir.Path + "/blob.bin";
  ASSERT_FALSE(static_cast<bool>(writeFileBytes(Path, {1, 2, 3})));
  fault::arm("file.mmap", 1);
  auto Map = MappedFile::open(Path);
  ASSERT_FALSE(static_cast<bool>(Map));
  EXPECT_NE(Map.message().find("file.mmap"), std::string::npos);
  // The registry point fires once; the next open succeeds.
  auto Retry = MappedFile::open(Path);
  ASSERT_TRUE(static_cast<bool>(Retry));
  EXPECT_EQ(Retry->size(), 3u);
}

TEST_F(MappedFileTest, GmonFileReadFailsCleanlyUnderMmapFault) {
  TempDir Dir("mapped_gmonfault");
  std::string Path = Dir.Path + "/p.gmon";
  ASSERT_FALSE(static_cast<bool>(writeGmonFile(Path, makeRefData())));
  fault::arm("file.mmap", 1);
  auto Data = readGmonFile(Path);
  ASSERT_FALSE(static_cast<bool>(Data));
  EXPECT_NE(Data.message().find("file.mmap"), std::string::npos);
  auto Retry = readGmonFile(Path);
  ASSERT_TRUE(static_cast<bool>(Retry));
  EXPECT_EQ(writeGmon(*Retry), writeGmon(makeRefData()));
}

//===----------------------------------------------------------------------===//
// Differential corpus: in-place parser vs the BinaryStream reference
//===----------------------------------------------------------------------===//

TEST_F(ReadPathCorpusTest, IntactFileBitIdenticalInBothModes) {
  std::vector<uint8_t> Bytes = writeGmon(makeRefData());
  expectReadersAgree(Bytes, /*Tolerant=*/false, "intact strict");
  expectReadersAgree(Bytes, /*Tolerant=*/true, "intact tolerant");
}

TEST_F(ReadPathCorpusTest, TruncationEveryCutPointMatchesReference) {
  const std::vector<uint8_t> Full = writeGmon(makeRefData());
  for (size_t Cut = 0; Cut <= Full.size(); ++Cut) {
    std::vector<uint8_t> Bytes(Full.begin(), Full.begin() + Cut);
    expectReadersAgree(Bytes, false, "strict cut at " + std::to_string(Cut));
    expectReadersAgree(Bytes, true, "tolerant cut at " + std::to_string(Cut));
  }
}

TEST_F(ReadPathCorpusTest, EveryByteMutationMatchesReference) {
  const std::vector<uint8_t> Full = writeGmon(makeRefData());
  for (size_t I = 0; I != Full.size(); ++I) {
    std::vector<uint8_t> Bytes = Full;
    Bytes[I] ^= 0xFF;
    expectReadersAgree(Bytes, false, "strict flip at " + std::to_string(I));
    expectReadersAgree(Bytes, true, "tolerant flip at " + std::to_string(I));
  }
}

TEST_F(ReadPathCorpusTest, TrailingJunkMatchesReference) {
  std::vector<uint8_t> Bytes = writeGmon(makeRefData());
  Bytes.insert(Bytes.end(), {0xDE, 0xAD, 0xBE, 0xEF});
  expectReadersAgree(Bytes, false, "strict trailing");
  expectReadersAgree(Bytes, true, "tolerant trailing");
}

TEST_F(ReadPathCorpusTest, ContextFileIntactBitIdenticalInBothModes) {
  std::vector<uint8_t> Bytes = writeGmon(makeRefDataWithContexts());
  expectReadersAgree(Bytes, /*Tolerant=*/false, "v2 intact strict");
  expectReadersAgree(Bytes, /*Tolerant=*/true, "v2 intact tolerant");
}

TEST_F(ReadPathCorpusTest, ContextTruncationEveryCutPointMatchesReference) {
  const std::vector<uint8_t> Full = writeGmon(makeRefDataWithContexts());
  for (size_t Cut = 0; Cut != Full.size(); ++Cut) {
    std::vector<uint8_t> Bytes(Full.begin(), Full.begin() + Cut);
    expectReadersAgree(Bytes, false,
                       "v2 strict cut at " + std::to_string(Cut));
    expectReadersAgree(Bytes, true,
                       "v2 tolerant cut at " + std::to_string(Cut));
  }
}

TEST_F(ReadPathCorpusTest, ContextEveryByteMutationMatchesReference) {
  const std::vector<uint8_t> Full = writeGmon(makeRefDataWithContexts());
  for (size_t I = 0; I != Full.size(); ++I) {
    std::vector<uint8_t> Bytes = Full;
    Bytes[I] ^= 0xFF;
    expectReadersAgree(Bytes, false,
                       "v2 strict flip at " + std::to_string(I));
    expectReadersAgree(Bytes, true,
                       "v2 tolerant flip at " + std::to_string(I));
  }
}

TEST_F(ReadPathCorpusTest, ContextUnknownSectionSkipMatchesReference) {
  // Forward compatibility through both readers: an extra section with an
  // unknown tag is skipped whole; truncating inside it salvages the rest.
  std::vector<uint8_t> Bytes = writeGmon(makeRefDataWithContexts());
  Bytes[53 + 8 * 8 + 8 + 24 * 5] = 2; // nsections: 1 -> 2
  const uint8_t Unknown[] = {0x58, 0x58, 0x58, 0x58,
                             6,    0,    0,    0,    0, 0, 0, 0,
                             9,    8,    7,    6,    5, 4};
  Bytes.insert(Bytes.end(), std::begin(Unknown), std::end(Unknown));
  for (size_t Cut = Bytes.size() - sizeof(Unknown); Cut <= Bytes.size();
       ++Cut) {
    std::vector<uint8_t> Short(Bytes.begin(), Bytes.begin() + Cut);
    expectReadersAgree(Short, false,
                       "unknown-section strict cut at " + std::to_string(Cut));
    expectReadersAgree(Short, true,
                       "unknown-section tolerant cut at " +
                           std::to_string(Cut));
  }
}

TEST_F(ReadPathCorpusTest, MmapFileReadMatchesReferenceAtEveryCut) {
  TempDir Dir("corpus_file");
  const std::vector<uint8_t> Full = writeGmon(makeRefData());
  const std::string Path = Dir.Path + "/cut.gmon";
  for (size_t Cut = 0; Cut <= Full.size(); ++Cut) {
    std::vector<uint8_t> Bytes(Full.begin(), Full.begin() + Cut);
    ASSERT_FALSE(static_cast<bool>(writeFileBytes(Path, Bytes)));
    for (bool Tolerant : {false, true}) {
      GmonReadOptions Opts;
      Opts.Tolerant = Tolerant;
      GmonSalvage SRef, SFile;
      auto Ref = readGmonReference(Bytes, Opts, &SRef);
      auto File = readGmonFile(Path, Opts, &SFile);
      const std::string What =
          (Tolerant ? "tolerant" : "strict") + std::string(" file cut at ") +
          std::to_string(Cut);
      ASSERT_EQ(static_cast<bool>(Ref), static_cast<bool>(File)) << What;
      if (!Ref) {
        auto RefErr = Ref.takeError();
        auto FileErr = File.takeError();
        // The file layer prefixes the path; the parse diagnosis after it
        // must be the reference's, byte for byte.
        EXPECT_EQ(FileErr.message(), Path + ": " + RefErr.message()) << What;
        continue;
      }
      EXPECT_EQ(writeGmon(*Ref), writeGmon(*File)) << What;
      EXPECT_EQ(SRef.Note, SFile.Note) << What;
      EXPECT_EQ(SRef.SalvagedArcs, SFile.SalvagedArcs) << What;
      EXPECT_EQ(SRef.DroppedArcs, SFile.DroppedArcs) << What;
      EXPECT_EQ(SRef.SalvagedBuckets, SFile.SalvagedBuckets) << What;
      EXPECT_EQ(SRef.DroppedBuckets, SFile.DroppedBuckets) << What;
    }
  }
}

TEST_F(ReadPathCorpusTest, MmapCountersAdvanceOnFileReads) {
  TempDir Dir("corpus_counters");
  std::string Path = Dir.Path + "/p.gmon";
  ASSERT_FALSE(static_cast<bool>(writeGmonFile(Path, makeRefData())));
  const uint64_t Size = cantFail(readFileBytes(Path)).size();
  const uint64_t Files0 = telemetry::counter("gmon.mmap.files").value();
  const uint64_t Bytes0 = telemetry::counter("gmon.mmap.bytes").value();
  ASSERT_TRUE(static_cast<bool>(readGmonFile(Path)));
  ASSERT_TRUE(static_cast<bool>(readGmonFile(Path)));
  EXPECT_EQ(telemetry::counter("gmon.mmap.files").value(), Files0 + 2);
  EXPECT_EQ(telemetry::counter("gmon.mmap.bytes").value(),
            Bytes0 + 2 * Size);
}

//===----------------------------------------------------------------------===//
// Flat symbol resolver
//===----------------------------------------------------------------------===//

namespace {

/// Naive reference resolver: linear scan over (start, end) ranges.
uint32_t linearFindContaining(const std::vector<Symbol> &Syms, Address Pc) {
  for (uint32_t I = 0; I != Syms.size(); ++I)
    if (Pc >= Syms[I].Addr && Pc < Syms[I].Addr + Syms[I].Size)
      return I;
  return NoSymbol;
}

SymbolTable makeTable(const std::vector<Symbol> &Syms) {
  SymbolTable T;
  for (const Symbol &S : Syms)
    T.addSymbol(S.Name, S.Addr, S.Size);
  cantFail(T.finalize());
  return T;
}

} // namespace

TEST_F(ResolverTest, DenseTableMatchesLinearReferenceEverywhere) {
  // Dense text like the VM's: contiguous 64-byte routines with a few
  // gaps.  This shape builds the direct map.
  std::vector<Symbol> Raw;
  Address A = 0x10000;
  for (int I = 0; I != 200; ++I) {
    Raw.push_back({"fn" + std::to_string(I), A, 48});
    A += I % 7 == 0 ? 96 : 64; // occasional gap
  }
  SymbolTable T = makeTable(Raw);
  // The table sorts; resolve the reference against the sorted view.
  std::vector<Symbol> Sorted;
  for (uint32_t I = 0; I != T.size(); ++I)
    Sorted.push_back(T.symbol(I));
  for (Address Pc = 0x10000 - 8; Pc < A + 16; ++Pc)
    ASSERT_EQ(T.findContaining(Pc), linearFindContaining(Sorted, Pc))
        << "pc=" << Pc;
}

TEST_F(ResolverTest, SparseTableMatchesLinearReferenceEverywhere) {
  // One far-away outlier makes the address span enormous relative to the
  // symbol count, which must abandon the direct map (too-dense slots)
  // and take the binary-search path — the answers stay identical.
  std::vector<Symbol> Raw;
  for (int I = 0; I != 100; ++I)
    Raw.push_back({"near" + std::to_string(I),
                   0x1000 + static_cast<Address>(I) * 16, 16});
  Raw.push_back({"far", 0x7FFFFFFF0000ULL, 32});
  SymbolTable T = makeTable(Raw);
  std::vector<Symbol> Sorted;
  for (uint32_t I = 0; I != T.size(); ++I)
    Sorted.push_back(T.symbol(I));
  for (Address Pc = 0x1000 - 4; Pc < 0x1000 + 100 * 16 + 4; ++Pc)
    ASSERT_EQ(T.findContaining(Pc), linearFindContaining(Sorted, Pc))
        << "pc=" << Pc;
  EXPECT_EQ(T.findContaining(0x7FFFFFFF0000ULL), T.size() - 1);
  EXPECT_EQ(T.findContaining(0x7FFFFFFF001FULL), T.size() - 1);
  EXPECT_EQ(T.findContaining(0x7FFFFFFF0020ULL), NoSymbol);
  EXPECT_EQ(T.findContaining(0x400000000000ULL), NoSymbol);
}

TEST_F(ResolverTest, BoundaryLookupsArePinned) {
  SymbolTable T = makeTable({{"a", 0x100, 0x10}, {"b", 0x120, 0x10}});
  EXPECT_EQ(T.findContaining(0x0FF), NoSymbol);
  EXPECT_EQ(T.findContaining(0x100), 0u);
  EXPECT_EQ(T.findContaining(0x10F), 0u);
  EXPECT_EQ(T.findContaining(0x110), NoSymbol); // gap between a and b
  EXPECT_EQ(T.findContaining(0x11F), NoSymbol);
  EXPECT_EQ(T.findContaining(0x120), 1u);
  EXPECT_EQ(T.findContaining(0x12F), 1u);
  EXPECT_EQ(T.findContaining(0x130), NoSymbol);
  EXPECT_EQ(T.findAt(0x100), 0u);
  EXPECT_EQ(T.findAt(0x101), NoSymbol);
  EXPECT_EQ(T.findFirstAtOrAfter(0x000), 0u);
  EXPECT_EQ(T.findFirstAtOrAfter(0x101), 1u);
  EXPECT_EQ(T.findFirstAtOrAfter(0x121), NoSymbol);
}

TEST_F(ResolverTest, FindByNameServesFirstInAddressOrder) {
  SymbolTable T = makeTable(
      {{"dup", 0x300, 8}, {"dup", 0x100, 8}, {"uniq", 0x200, 8}});
  // Sorted order: dup@0x100 (0), uniq@0x200 (1), dup@0x300 (2).
  EXPECT_EQ(T.findByName("dup"), 0u);
  EXPECT_EQ(T.findByName("uniq"), 1u);
  EXPECT_EQ(T.findByName("absent"), NoSymbol);
}

TEST_F(ResolverTest, CopiedTableAnswersIdentically) {
  // The name index views an arena owned by the table; copying must
  // re-intern, not alias the source's storage.
  SymbolTable Orig = makeTable({{"f", 0x100, 16}, {"g", 0x200, 16}});
  SymbolTable Copy(Orig);
  SymbolTable Assigned;
  Assigned = Orig;
  for (const SymbolTable *T : {&Copy, &Assigned}) {
    EXPECT_EQ(T->findByName("f"), 0u);
    EXPECT_EQ(T->findByName("g"), 1u);
    EXPECT_EQ(T->findContaining(0x108), 0u);
    EXPECT_EQ(T->starts(), Orig.starts());
    EXPECT_EQ(T->ends(), Orig.ends());
  }
}

TEST_F(ResolverTest, SymbolAccessorServesValidIndicesUnchecked) {
  // symbol(I) no longer pays a .at() bounds throw on the hot path; valid
  // indices — the only ones its contract admits — must keep working, and
  // the SoA mirror must agree with the Symbol objects.
  SymbolTable T = makeTable({{"f", 0x100, 16}, {"g", 0x200, 16}});
  for (uint32_t I = 0; I != T.size(); ++I) {
    EXPECT_EQ(T.symbol(I).Addr, T.starts()[I]);
    EXPECT_EQ(T.symbol(I).Addr + T.symbol(I).Size, T.ends()[I]);
  }
#if GTEST_HAS_DEATH_TEST && !defined(NDEBUG)
  // Out of range is a caller bug: asserted in debug builds rather than
  // thrown, so release hot loops pay nothing.
  EXPECT_DEATH(T.symbol(static_cast<uint32_t>(T.size())),
               "symbol index out of range");
#endif
}

//===----------------------------------------------------------------------===//
// Open-addressing arc index (ProfileData)
//===----------------------------------------------------------------------===//

TEST_F(ArcIndexTest, AddArcAccumulatesAndIndexesCalleeTotals) {
  ProfileData D;
  for (uint64_t I = 0; I != 1000; ++I) {
    D.addArc(0x100 + (I % 50) * 8, 0x4000, 1);
    D.addArc(0x100 + (I % 50) * 8, 0x5000, 2);
  }
  EXPECT_EQ(D.Arcs.size(), 100u); // 50 call sites x 2 callees
  EXPECT_EQ(D.callsInto(0x4000), 1000u);
  EXPECT_EQ(D.callsInto(0x5000), 2000u);
  EXPECT_EQ(D.callsInto(0x6000), 0u);
  for (const ArcRecord &R : D.Arcs)
    EXPECT_EQ(R.Count, R.SelfPc == 0x4000 ? 20u : 40u);
}

TEST_F(ArcIndexTest, ExternalReorderIsDetectedAndReindexed) {
  ProfileData D;
  D.addArc(0x10, 0x100, 1);
  D.addArc(0x20, 0x200, 2);
  D.addArc(0x30, 0x300, 3);
  // Reorder Arcs behind the index's back; the next addArc must detect
  // the stale position and accumulate into the right record anyway.
  std::reverse(D.Arcs.begin(), D.Arcs.end());
  D.addArc(0x10, 0x100, 10);
  uint64_t Count = 0;
  for (const ArcRecord &R : D.Arcs)
    if (R.FromPc == 0x10 && R.SelfPc == 0x100)
      Count = R.Count;
  EXPECT_EQ(Count, 11u);
  EXPECT_EQ(D.Arcs.size(), 3u);
  EXPECT_EQ(D.callsInto(0x100), 11u);
}

TEST_F(ArcIndexTest, DirectPushIsReindexedOnNextAddArc) {
  ProfileData D;
  D.Arcs.push_back({0x10, 0x100, 5});
  D.Arcs.push_back({0x20, 0x100, 7});
  D.addArc(0x10, 0x100, 1); // size mismatch triggers a rebuild first
  EXPECT_EQ(D.Arcs.size(), 2u);
  EXPECT_EQ(D.Arcs[0].Count, 6u);
  EXPECT_EQ(D.callsInto(0x100), 13u);
}

TEST_F(ArcIndexTest, CanonicalizeCoalescesDuplicatesAndSorts) {
  ProfileData D;
  D.Arcs.push_back({0x30, 0x300, 3});
  D.Arcs.push_back({0x10, 0x100, 1});
  D.Arcs.push_back({0x30, 0x300, 4});
  D.canonicalizeArcs();
  ASSERT_EQ(D.Arcs.size(), 2u);
  EXPECT_EQ(D.Arcs[0].FromPc, 0x10u);
  EXPECT_EQ(D.Arcs[0].Count, 1u);
  EXPECT_EQ(D.Arcs[1].FromPc, 0x30u);
  EXPECT_EQ(D.Arcs[1].Count, 7u);
  EXPECT_EQ(D.callsInto(0x300), 7u);
}

TEST_F(ArcIndexTest, MergeSumsThroughTheFlatIndex) {
  ProfileData A, B;
  A.addArc(0x10, 0x100, 1);
  A.addArc(0x20, 0x200, 2);
  B.addArc(0x10, 0x100, 10);
  B.addArc(0x30, 0x300, 30);
  ASSERT_FALSE(static_cast<bool>(A.merge(B)));
  A.canonicalizeArcs();
  ASSERT_EQ(A.Arcs.size(), 3u);
  EXPECT_EQ(A.Arcs[0].Count, 11u);
  EXPECT_EQ(A.Arcs[1].Count, 2u);
  EXPECT_EQ(A.Arcs[2].Count, 30u);
  EXPECT_EQ(A.RunCount, 2u);
}
