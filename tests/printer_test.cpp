//===- tests/printer_test.cpp - Output-format tests for the listings ------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pins the row-level format of the flat and call graph listings: exact
/// column contents for known profiles, edge cases (empty profiles, zero
/// time, overflow warnings), and the §5 documentation claims about what
/// each listing shows.
///
//===----------------------------------------------------------------------===//

#include "core/Analyzer.h"
#include "core/FlatPrinter.h"
#include "core/GraphPrinter.h"
#include "core/SyntheticProfile.h"

#include <gtest/gtest.h>

using namespace gprof;

namespace {

/// Splits text into lines.
std::vector<std::string> lines(const std::string &S) {
  std::vector<std::string> Out;
  size_t Start = 0;
  while (Start <= S.size()) {
    size_t End = S.find('\n', Start);
    if (End == std::string::npos) {
      if (Start < S.size())
        Out.push_back(S.substr(Start));
      break;
    }
    Out.push_back(S.substr(Start, End - Start));
    Start = End + 1;
  }
  return Out;
}

/// The first line containing \p Needle, or empty.
std::string lineWith(const std::string &Text, const std::string &Needle) {
  for (const std::string &L : lines(Text))
    if (L.find(Needle) != std::string::npos)
      return L;
  return "";
}

ProfileReport analyzeBuilder(const SyntheticProfileBuilder &B,
                             AnalyzerOptions Opts = {}) {
  auto In = B.build();
  Analyzer A(std::move(In.Syms), std::move(Opts));
  A.setStaticArcs(In.StaticArcs);
  return cantFail(A.analyze(In.Data));
}

} // namespace

//===----------------------------------------------------------------------===//
// Flat profile format
//===----------------------------------------------------------------------===//

TEST(FlatFormatTest, ColumnsOfAKnownRow) {
  SyntheticProfileBuilder B(100);
  uint32_t Main = B.addFunction("main");
  uint32_t Leaf = B.addFunction("leaf");
  B.addSpontaneous(Main);
  B.addCall(Main, Leaf, 8);
  B.setSelfSeconds(Leaf, 2.0);  // 250 ms/call self and total.
  B.setSelfSeconds(Main, 2.0);
  ProfileReport R = analyzeBuilder(B);

  std::string Row = lineWith(printFlatProfile(R), "leaf");
  ASSERT_FALSE(Row.empty());
  // " 50.0       2.00      2.00        8   250.00   250.00  leaf"
  EXPECT_NE(Row.find(" 50.0"), std::string::npos) << Row;
  EXPECT_NE(Row.find("2.00"), std::string::npos) << Row;
  EXPECT_NE(Row.find("8"), std::string::npos) << Row;
  EXPECT_NE(Row.find("250.00"), std::string::npos) << Row;
}

TEST(FlatFormatTest, CumulativeColumnAccumulates) {
  SyntheticProfileBuilder B(100);
  uint32_t Main = B.addFunction("main");
  uint32_t A = B.addFunction("aaa");
  uint32_t C = B.addFunction("ccc");
  B.addSpontaneous(Main);
  B.addCall(Main, A, 1);
  B.addCall(Main, C, 1);
  B.setSelfSeconds(A, 3.0);
  B.setSelfSeconds(C, 1.0);
  ProfileReport R = analyzeBuilder(B);
  std::string Out = printFlatProfile(R);
  // aaa first (3.00 cumulative 3.00), ccc second (cumulative 4.00).
  EXPECT_NE(lineWith(Out, "aaa").find("3.00"), std::string::npos);
  EXPECT_NE(lineWith(Out, "ccc").find("4.00"), std::string::npos);
  EXPECT_LT(Out.find("aaa"), Out.find("ccc"));
}

TEST(FlatFormatTest, NoCallsMeansBlankCallColumns) {
  SyntheticProfileBuilder B(100);
  uint32_t Main = B.addFunction("main");
  B.addFunction("sampled_only");
  B.addSpontaneous(Main);
  B.setSelfSeconds(1, 1.0);
  ProfileReport R = analyzeBuilder(B);
  std::string Row = lineWith(printFlatProfile(R), "sampled_only");
  ASSERT_FALSE(Row.empty());
  // The calls and ms/call fields are blank: only two numbers (cumulative
  // and self) appear before the name.
  EXPECT_EQ(Row.find("ms"), std::string::npos);
  int NumberFields = 0;
  bool InField = false;
  for (char C : Row.substr(0, Row.find("sampled_only"))) {
    if (!isspace(static_cast<unsigned char>(C))) {
      if (!InField)
        ++NumberFields;
      InField = true;
    } else {
      InField = false;
    }
  }
  EXPECT_EQ(NumberFields, 3) << Row; // %time, cumulative, self.
}

TEST(FlatFormatTest, OverflowWarningShown) {
  SyntheticProfileBuilder B(100);
  uint32_t Main = B.addFunction("main");
  B.addSpontaneous(Main);
  auto In = B.build();
  In.Data.ArcTableOverflowed = true;
  Analyzer A(std::move(In.Syms));
  ProfileReport R = cantFail(A.analyze(In.Data));
  std::string Out = printFlatProfile(R);
  EXPECT_NE(Out.find("arc table overflowed"), std::string::npos);
  // The call graph listing leads with the same warning: its call counts
  // are the numbers the overflow made lower bounds.
  std::string Graph = printCallGraph(R);
  EXPECT_NE(Graph.find("arc table overflowed"), std::string::npos);
  EXPECT_LT(Graph.find("arc table overflowed"),
            Graph.find("call graph profile"));
}

TEST(FlatFormatTest, UnattributedTimeNoted) {
  SymbolTable Syms;
  Syms.addSymbol("only", 100, 10);
  cantFail(Syms.finalize());
  ProfileData Data;
  Data.TicksPerSecond = 10;
  Histogram H(0, 1000, 1);
  for (int I = 0; I != 20; ++I)
    H.recordPc(500);
  Data.Hist = std::move(H);
  Analyzer A(std::move(Syms));
  ProfileReport R = cantFail(A.analyze(Data));
  std::string Out = printFlatProfile(R);
  EXPECT_NE(Out.find("2.00 seconds sampled outside"), std::string::npos);
}

TEST(FlatFormatTest, BriefSuppressesBlurb) {
  SyntheticProfileBuilder B(100);
  uint32_t Main = B.addFunction("main");
  B.addSpontaneous(Main);
  ProfileReport R = analyzeBuilder(B);
  FlatPrintOptions Opts;
  Opts.Brief = true;
  std::string Out = printFlatProfile(R, Opts);
  EXPECT_EQ(Out.find("Each sample counts"), std::string::npos);
  EXPECT_NE(Out.find("cumulative"), std::string::npos);
}

TEST(FlatFormatTest, EmptyProfilePrintsHeaderOnly) {
  SymbolTable Syms;
  cantFail(Syms.finalize());
  ProfileData Data;
  Analyzer A(std::move(Syms));
  ProfileReport R = cantFail(A.analyze(Data));
  std::string Out = printFlatProfile(R);
  EXPECT_NE(Out.find("cumulative"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Call graph listing format
//===----------------------------------------------------------------------===//

namespace {

/// A three-level profile with known numbers for row checks.
ProfileReport threeLevel() {
  SyntheticProfileBuilder B(100);
  uint32_t Main = B.addFunction("main");
  uint32_t Mid = B.addFunction("mid");
  uint32_t Leaf = B.addFunction("leaf");
  B.addSpontaneous(Main);
  B.addCall(Main, Mid, 2);
  B.addCall(Mid, Leaf, 10);
  B.setSelfSeconds(Main, 1.0);
  B.setSelfSeconds(Mid, 1.0);
  B.setSelfSeconds(Leaf, 2.0);
  return analyzeBuilder(B);
}

} // namespace

TEST(GraphFormatTest, PrimaryLineContents) {
  ProfileReport R = threeLevel();
  std::string Out = printCallGraph(R);
  // main: 100% of 4.0s, self 1.00, desc 3.00, called 1.
  std::string Primary = lineWith(Out, "main [");
  ASSERT_FALSE(Primary.empty());
  EXPECT_NE(Primary.find("100.0"), std::string::npos) << Primary;
  EXPECT_NE(Primary.find("1.00"), std::string::npos) << Primary;
  EXPECT_NE(Primary.find("3.00"), std::string::npos) << Primary;
}

TEST(GraphFormatTest, ParentRowShowsPropagatedShares) {
  ProfileReport R = threeLevel();
  // leaf's entry: parent row for mid shows 2.00 self / 0.00 desc, 10/10.
  std::string Entry = printCallGraphEntry(R, "leaf");
  std::string ParentRow = lineWith(Entry, "mid [");
  ASSERT_FALSE(ParentRow.empty());
  EXPECT_NE(ParentRow.find("2.00"), std::string::npos) << ParentRow;
  EXPECT_NE(ParentRow.find("10/10"), std::string::npos) << ParentRow;
}

TEST(GraphFormatTest, EntriesSeparatedAndOrdered) {
  ProfileReport R = threeLevel();
  std::string Out = printCallGraph(R);
  // Order by total time: main (4.0) then mid (3.0) then leaf (2.0).
  size_t MainPos = Out.find("main [1]");
  size_t MidPos = Out.find("mid [2]");
  size_t LeafPos = Out.find("leaf [3]");
  EXPECT_NE(MainPos, std::string::npos);
  EXPECT_NE(MidPos, std::string::npos);
  EXPECT_NE(LeafPos, std::string::npos);
  EXPECT_LT(MainPos, MidPos);
  EXPECT_LT(MidPos, LeafPos);
  // Separators between entries.
  size_t Count = 0;
  for (const std::string &L : lines(Out))
    if (L.rfind("-----", 0) == 0)
      ++Count;
  EXPECT_GE(Count, 4u); // Header + one per entry.
}

TEST(GraphFormatTest, IndexTableAlphabetical) {
  ProfileReport R = threeLevel();
  std::string Out = printCallGraph(R);
  size_t TablePos = Out.find("index by function name");
  ASSERT_NE(TablePos, std::string::npos);
  std::string Table = Out.substr(TablePos);
  EXPECT_LT(Table.find("leaf"), Table.find("main"));
  EXPECT_LT(Table.find("main"), Table.find("mid"));
}

TEST(GraphFormatTest, StaticChildRowShowsZeroCount) {
  SyntheticProfileBuilder B(100);
  uint32_t Main = B.addFunction("main");
  uint32_t Cold = B.addFunction("cold");
  uint32_t Other = B.addFunction("other");
  B.addSpontaneous(Main);
  B.addStaticArc(Main, Cold);
  B.addCall(Other, Cold, 5);
  B.addSpontaneous(Other);
  B.setSelfSeconds(Cold, 1.0);
  AnalyzerOptions Opts;
  Opts.UseStaticArcs = true;
  ProfileReport R = analyzeBuilder(B, Opts);
  std::string Entry = printCallGraphEntry(R, "main");
  std::string Row = lineWith(Entry, "cold [");
  ASSERT_FALSE(Row.empty());
  EXPECT_NE(Row.find("0/5"), std::string::npos) << Row;
  EXPECT_NE(Row.find("0.00"), std::string::npos) << Row;
}

TEST(GraphFormatTest, NeverCalledEntryAnnotated) {
  SyntheticProfileBuilder B(100);
  uint32_t Main = B.addFunction("main");
  uint32_t Ghost = B.addFunction("ghost");
  B.addSpontaneous(Main);
  B.addStaticArc(Main, Ghost);
  AnalyzerOptions Opts;
  Opts.UseStaticArcs = true;
  ProfileReport R = analyzeBuilder(B, Opts);
  std::string Entry = printCallGraphEntry(R, "ghost");
  // ghost has a parent row (the static arc), so no <never called>, but a
  // 0-calls primary line.
  EXPECT_NE(Entry.find("main"), std::string::npos);
  std::string Primary = lineWith(Entry, "ghost [");
  EXPECT_NE(Primary.find(" 0 "), std::string::npos) << Primary;
}

TEST(GraphFormatTest, SelfRecursionPlusNotation) {
  SyntheticProfileBuilder B(100);
  uint32_t Main = B.addFunction("main");
  uint32_t Rec = B.addFunction("rec");
  B.addSpontaneous(Main);
  B.addCall(Main, Rec, 3);
  B.addCall(Rec, Rec, 7);
  ProfileReport R = analyzeBuilder(B);
  std::string Primary = lineWith(printCallGraphEntry(R, "rec"), "rec [");
  EXPECT_NE(Primary.find("3+7"), std::string::npos) << Primary;
}

TEST(GraphFormatTest, CycleMembersListedInsideCycleEntry) {
  SyntheticProfileBuilder B(100);
  uint32_t Main = B.addFunction("main");
  uint32_t X = B.addFunction("xx");
  uint32_t Y = B.addFunction("yy");
  B.addSpontaneous(Main);
  B.addCall(Main, X, 5);
  B.addCall(X, Y, 20);
  B.addCall(Y, X, 19);
  B.setSelfSeconds(X, 1.0);
  B.setSelfSeconds(Y, 2.0);
  ProfileReport R = analyzeBuilder(B);
  std::string Out = printCallGraph(R);

  size_t CyclePos = Out.find("<cycle 1 as a whole>");
  ASSERT_NE(CyclePos, std::string::npos);
  // Members appear (with their intra-cycle call counts) after the cycle's
  // primary line and before the next separator.
  std::string CycleBlock = Out.substr(CyclePos, Out.find("-----", CyclePos) -
                                                    CyclePos);
  EXPECT_NE(CycleBlock.find("xx <cycle1>"), std::string::npos);
  EXPECT_NE(CycleBlock.find("yy <cycle1>"), std::string::npos);
  // Cycle primary shows 5 external + 39 internal.
  EXPECT_NE(Out.find("5+39"), std::string::npos);
}

TEST(GraphFormatTest, SpontaneousRowPlacement) {
  ProfileReport R = threeLevel();
  std::string Entry = printCallGraphEntry(R, "main");
  auto Ls = lines(Entry);
  // The <spontaneous> row precedes the primary line.
  size_t SpontLine = ~0u, PrimaryLine = ~0u;
  for (size_t I = 0; I != Ls.size(); ++I) {
    if (Ls[I].find("<spontaneous>") != std::string::npos)
      SpontLine = I;
    if (Ls[I].find("main [1]") != std::string::npos && Ls[I][0] == '[')
      PrimaryLine = I;
  }
  ASSERT_NE(SpontLine, ~0u);
  ASSERT_NE(PrimaryLine, ~0u);
  EXPECT_LT(SpontLine, PrimaryLine);
}
