//===- tests/serve_test.cpp - Continuous-profiling daemon tests -----------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end tests for the ingestion service (src/serve/): frame codec
/// robustness against truncation and byte mutation, the daemon's
/// ping/put/list/query round trip, byte-identity of daemon-side reports
/// against offline `gprof-store report` after 16 concurrent pushers,
/// bounded-queue backpressure, survival of garbage streams and mid-upload
/// disconnects, fault-injected socket and index failures leaving the store
/// tree untouched, and the `gprof-store serve` / `tlrun --push` CLI loop
/// (docs/SERVE.md).
///
//===----------------------------------------------------------------------===//

#include "core/Analyzer.h"
#include "core/FlatPrinter.h"
#include "core/GraphPrinter.h"
#include "gmon/GmonFile.h"
#include "runtime/Monitor.h"
#include "serve/Client.h"
#include "serve/Protocol.h"
#include "serve/Server.h"
#include "store/ProfileStore.h"
#include "support/EventLog.h"
#include "support/FaultInjection.h"
#include "support/FileUtils.h"
#include "support/Format.h"
#include "support/Sha256.h"
#include "support/Socket.h"
#include "support/Telemetry.h"
#include "support/TraceWriter.h"
#include "vm/CodeGen.h"
#include "vm/Image.h"
#include "vm/VM.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace gprof;
using namespace gprof::serve;

namespace {

std::string tempPath(const std::string &Name) {
  // Per-process paths: ctest runs each test case as its own process, so a
  // shared fixed path would race under parallel test execution.
  return testing::TempDir() + format("/gprof_serve_%d_%s", getpid(),
                                     Name.c_str());
}

int runRedirected(const std::string &Full, std::string &Output) {
  std::FILE *Pipe = popen(Full.c_str(), "r");
  if (!Pipe)
    return -1;
  Output.clear();
  char Buf[4096];
  while (size_t N = std::fread(Buf, 1, sizeof(Buf), Pipe))
    Output.append(Buf, N);
  int Status = pclose(Pipe);
  return WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
}

/// Runs a command, capturing stdout+stderr; returns the exit code.
int runCommand(const std::string &Command, std::string &Output) {
  return runRedirected(Command + " 2>&1", Output);
}

/// Runs a command, capturing only stdout (for byte comparisons that must
/// not see stderr feedback lines).
int runCommandStdout(const std::string &Command, std::string &Output) {
  return runRedirected(Command + " 2>/dev/null", Output);
}

/// Every regular file under \p Root, as relative path -> contents.  Used
/// to prove a failed upload left the store tree byte-identical.
std::map<std::string, std::vector<uint8_t>>
snapshotTree(const std::string &Root) {
  std::map<std::string, std::vector<uint8_t>> Tree;
  for (const auto &Entry :
       std::filesystem::recursive_directory_iterator(Root)) {
    if (!Entry.is_regular_file())
      continue;
    std::string Rel =
        std::filesystem::relative(Entry.path(), Root).string();
    Tree[Rel] = cantFail(readFileBytes(Entry.path().string()));
  }
  return Tree;
}

/// Pings \p SocketPath until the daemon answers, failing after ~5s.
testing::AssertionResult waitForDaemon(const std::string &SocketPath) {
  ClientOptions CO;
  CO.Retries = 0;
  CO.RetryBackoffMs = 0;
  for (int I = 0; I != 100; ++I) {
    ServeClient Probe(SocketPath, CO);
    Error E = Probe.ping();
    if (!E)
      return testing::AssertionSuccess();
    (void)E.message();
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return testing::AssertionFailure() << "daemon never came up at "
                                     << SocketPath;
}

/// Fixture: compiles the TL primes example with profiling once and
/// profiles it under four different tick rates, yielding four distinct but
/// mutually compatible gmon shards plus the image they belong to.
class ServeTest : public testing::Test {
protected:
  static void SetUpTestSuite() {
    ImgPath = new std::string(tempPath("primes.tlx"));
    std::string Source =
        cantFail(readFileText(std::string(TL_CORPUS_DIR) + "/primes.tl"));
    CodeGenOptions CG;
    CG.EnableProfiling = true;
    Image Compiled = compileTLOrDie(Source, CG);
    cantFail(Compiled.saveToFile(*ImgPath));
    ImageId = new Sha256Digest(
        Sha256::hash(cantFail(readFileBytes(*ImgPath))));

    Shards = new std::vector<std::vector<uint8_t>>();
    for (uint64_t CyclesPerTick : {997, 1009, 4001, 9973}) {
      Monitor Mon(Compiled.lowPc(), Compiled.highPc());
      VMOptions VO;
      VO.CyclesPerTick = CyclesPerTick;
      VM Machine(Compiled, VO);
      Machine.setHooks(&Mon);
      cantFail(Machine.run());
      Shards->push_back(writeGmon(Mon.finish()));
    }
  }

  static void TearDownTestSuite() {
    std::remove(ImgPath->c_str());
    delete ImgPath;
    delete ImageId;
    delete Shards;
  }

  /// One running daemon over a fresh store, torn down with the test.
  struct Daemon {
    Daemon(const std::string &Name, const ServeOptions &Opts = {}) {
      StoreRoot = tempPath(Name + "_store");
      SocketPath = tempPath(Name + ".sock");
      std::filesystem::remove_all(StoreRoot);
      Server = cantFail(ServeServer::create(StoreRoot, SocketPath, Opts));
      cantFail(Server->start());
    }
    ~Daemon() {
      Server->stop();
      std::filesystem::remove_all(StoreRoot);
    }
    std::string StoreRoot;
    std::string SocketPath;
    std::unique_ptr<ServeServer> Server;
  };

  static std::string *ImgPath;
  static Sha256Digest *ImageId;
  static std::vector<std::vector<uint8_t>> *Shards;
};

std::string *ServeTest::ImgPath = nullptr;
Sha256Digest *ServeTest::ImageId = nullptr;
std::vector<std::vector<uint8_t>> *ServeTest::Shards = nullptr;

} // namespace

//===----------------------------------------------------------------------===//
// Protocol codecs
//===----------------------------------------------------------------------===//

TEST(ServeProtocolTest, FrameHeaderRoundTripAndValidation) {
  std::vector<uint8_t> Header =
      encodeFrameHeader(MsgType::PutShard, 12345, 77);
  ASSERT_EQ(Header.size(), FrameHeaderSize);
  MsgType Type;
  uint64_t ReqId = 0;
  auto Length = decodeFrameHeader(Header.data(), Type, ReqId);
  ASSERT_TRUE(static_cast<bool>(Length));
  EXPECT_EQ(*Length, 12345u);
  EXPECT_EQ(Type, MsgType::PutShard);
  EXPECT_EQ(ReqId, 77u);

  // The id defaults to 0 (requests carry no id).
  Header = encodeFrameHeader(MsgType::Ping, 0);
  ReqId = 99;
  ASSERT_TRUE(
      static_cast<bool>(decodeFrameHeader(Header.data(), Type, ReqId)));
  EXPECT_EQ(ReqId, 0u);

  // Bad magic.
  std::vector<uint8_t> Bad = encodeFrameHeader(MsgType::PutShard, 12345);
  Bad[0] = 'X';
  auto BadMagic = decodeFrameHeader(Bad.data(), Type, ReqId);
  ASSERT_FALSE(static_cast<bool>(BadMagic));
  EXPECT_NE(BadMagic.message().find("magic"), std::string::npos);

  // Unknown type.
  Bad = encodeFrameHeader(MsgType::PutShard, 12345);
  Bad[4] = 99;
  auto BadType = decodeFrameHeader(Bad.data(), Type, ReqId);
  ASSERT_FALSE(static_cast<bool>(BadType));
  EXPECT_NE(BadType.message().find("unknown frame type"), std::string::npos);

  // Oversized length field.
  Bad = encodeFrameHeader(MsgType::PutShard, MaxFramePayload + 1);
  auto TooBig = decodeFrameHeader(Bad.data(), Type, ReqId);
  ASSERT_FALSE(static_cast<bool>(TooBig));
  EXPECT_NE(TooBig.message().find("exceeds"), std::string::npos);
}

TEST(ServeProtocolTest, TypeRangesAndNames) {
  // The request range must cover QUERY_STATS and stay disjoint from the
  // response range; a regression here makes the daemon drop the frame.
  for (uint8_t T : {1, 2, 3, 4, 5}) {
    EXPECT_TRUE(isRequestType(T)) << unsigned(T);
    EXPECT_FALSE(isResponseType(T)) << unsigned(T);
  }
  for (uint8_t T : {16, 17, 18}) {
    EXPECT_FALSE(isRequestType(T)) << unsigned(T);
    EXPECT_TRUE(isResponseType(T)) << unsigned(T);
  }
  for (uint8_t T : {0, 6, 15, 19, 99}) {
    EXPECT_FALSE(isRequestType(T)) << unsigned(T);
    EXPECT_FALSE(isResponseType(T)) << unsigned(T);
  }

  // msgTypeName is used in telemetry metric names; the strings are a
  // stable contract, including the out-of-range form.
  EXPECT_EQ(msgTypeName(MsgType::Ping), "ping");
  EXPECT_EQ(msgTypeName(MsgType::PutShard), "put_shard");
  EXPECT_EQ(msgTypeName(MsgType::List), "list");
  EXPECT_EQ(msgTypeName(MsgType::QueryReport), "query_report");
  EXPECT_EQ(msgTypeName(MsgType::QueryStats), "query_stats");
  EXPECT_EQ(msgTypeName(MsgType::Ok), "ok");
  EXPECT_EQ(msgTypeName(MsgType::Err), "error");
  EXPECT_EQ(msgTypeName(MsgType::Retry), "retry");
  EXPECT_EQ(msgTypeName(static_cast<MsgType>(99)), "unknown(99)");
}

TEST(ServeProtocolTest, QueryStatsCodecsRoundTrip) {
  QueryStatsRequest Req;
  Req.SinceSeq = 41;
  Req.Filter = "serve.request.";
  auto ReqBack = decodeQueryStats(encodeQueryStats(Req));
  ASSERT_TRUE(static_cast<bool>(ReqBack));
  EXPECT_EQ(ReqBack->SinceSeq, 41u);
  EXPECT_EQ(ReqBack->Filter, "serve.request.");

  StatsResponse Resp;
  Resp.StatsJson = "{\"bench\": \"x\"}\n";
  Resp.LastSeq = 123;
  auto RespBack = decodeStatsResponse(encodeStatsResponse(Resp));
  ASSERT_TRUE(static_cast<bool>(RespBack));
  EXPECT_EQ(RespBack->StatsJson, Resp.StatsJson);
  EXPECT_EQ(RespBack->LastSeq, 123u);

  // Truncations and single-byte mutations: error or a different value,
  // never a crash or over-read.
  for (const auto &Valid :
       {encodeQueryStats(Req), encodeStatsResponse(Resp)}) {
    for (size_t Cut = 0; Cut != Valid.size(); ++Cut) {
      std::vector<uint8_t> Trunc(Valid.begin(), Valid.begin() + Cut);
      auto R = decodeQueryStats(Trunc);
      if (!R)
        (void)R.takeError();
      auto S = decodeStatsResponse(Trunc);
      if (!S)
        (void)S.takeError();
    }
    for (size_t I = 0; I != Valid.size(); ++I) {
      std::vector<uint8_t> Mutated = Valid;
      Mutated[I] ^= 0xFF;
      auto R = decodeQueryStats(Mutated);
      if (!R)
        (void)R.takeError();
      auto S = decodeStatsResponse(Mutated);
      if (!S)
        (void)S.takeError();
    }
  }
}

TEST(ServeProtocolTest, PayloadCodecsRoundTrip) {
  PutShardRequest Put;
  Put.ImageId.fill(7);
  Put.GmonBytes = {1, 2, 3, 4, 5};
  auto PutBack = decodePutShard(encodePutShard(Put));
  ASSERT_TRUE(static_cast<bool>(PutBack));
  EXPECT_EQ(PutBack->ImageId, Put.ImageId);
  EXPECT_EQ(PutBack->GmonBytes, Put.GmonBytes);

  QueryReportRequest Query;
  Query.ImagePath = "some/image.tlx";
  Query.Flags.GraphOnly = true;
  Query.Flags.Brief = true;
  Query.Members.resize(3);
  Query.Members[1].fill(9);
  auto QueryBack = decodeQueryReport(encodeQueryReport(Query));
  ASSERT_TRUE(static_cast<bool>(QueryBack));
  EXPECT_EQ(QueryBack->ImagePath, Query.ImagePath);
  EXPECT_TRUE(QueryBack->Flags.GraphOnly);
  EXPECT_TRUE(QueryBack->Flags.Brief);
  EXPECT_FALSE(QueryBack->Flags.FlatOnly);
  EXPECT_EQ(QueryBack->Members, Query.Members);

  std::vector<ShardInfo> List(2);
  List[0].Digest.fill(1);
  List[0].Hz = 60;
  List[0].NumArcs = 5;
  List[1].Digest.fill(2);
  List[1].Runs = 3;
  auto ListBack = decodeShardList(encodeShardList(List));
  ASSERT_TRUE(static_cast<bool>(ListBack));
  ASSERT_EQ(ListBack->size(), 2u);
  EXPECT_EQ((*ListBack)[0].Digest, List[0].Digest);
  EXPECT_EQ((*ListBack)[0].Hz, 60u);
  EXPECT_EQ((*ListBack)[1].Runs, 3u);
}

TEST(ServeProtocolTest, DecodersSurviveTruncationAndMutation) {
  // Build valid payloads, then feed the decoders every truncation and a
  // sweep of single-byte corruptions.  The claim is "error or a different
  // value, never a crash or over-read".
  PutShardRequest Put;
  Put.GmonBytes = {1, 2, 3};
  std::vector<ShardInfo> List(2);
  QueryReportRequest Query;
  Query.ImagePath = "x.tlx";
  Query.Members.resize(2);

  const std::vector<std::vector<uint8_t>> Payloads = {
      encodePutShard(Put), encodeShardList(List),
      encodeQueryReport(Query)};
  auto Exercise = [](const std::vector<uint8_t> &Bytes) {
    auto P = decodePutShard(Bytes);
    if (!P)
      (void)P.takeError();
    auto L = decodeShardList(Bytes);
    if (!L)
      (void)L.takeError();
    auto Q = decodeQueryReport(Bytes);
    if (!Q)
      (void)Q.takeError();
    auto D = decodeDigest(Bytes);
    if (!D)
      (void)D.takeError();
  };

  for (const auto &Valid : Payloads) {
    for (size_t Cut = 0; Cut != Valid.size(); ++Cut)
      Exercise(std::vector<uint8_t>(Valid.begin(), Valid.begin() + Cut));
    for (size_t I = 0; I != Valid.size(); ++I) {
      std::vector<uint8_t> Mutated = Valid;
      Mutated[I] ^= 0xFF;
      Exercise(Mutated);
    }
  }
}

//===----------------------------------------------------------------------===//
// Daemon round trips
//===----------------------------------------------------------------------===//

TEST_F(ServeTest, PingPutListQueryRoundTrip) {
  Daemon D("roundtrip");
  ServeClient Client(D.SocketPath);
  cantFail(Client.ping());

  // put: content-addressed and idempotent, like `gprof-store put`.
  Sha256Digest Digest =
      cantFail(Client.putShard(Shards->front(), *ImageId));
  EXPECT_EQ(cantFail(Client.putShard(Shards->front(), *ImageId)), Digest);

  auto Listed = Client.list();
  ASSERT_TRUE(static_cast<bool>(Listed));
  ASSERT_EQ(Listed->size(), 1u);
  EXPECT_EQ(Listed->front().Digest, Digest);
  EXPECT_EQ(Listed->front().ImageId, *ImageId);
  EXPECT_EQ(Listed->front().Runs, 1u);

  // query: full report over the one shard, and a flat-only one
  // restricted to an explicit member digest.
  QueryReportRequest Req;
  Req.ImagePath = *ImgPath;
  auto Full = Client.queryReport(Req);
  ASSERT_TRUE(static_cast<bool>(Full));
  EXPECT_NE(Full->find("flat profile"), std::string::npos);
  Req.Flags.FlatOnly = true;
  Req.Members = {Digest};
  auto Flat = Client.queryReport(Req);
  ASSERT_TRUE(static_cast<bool>(Flat));
  EXPECT_EQ(Full->compare(0, Flat->size(), *Flat), 0)
      << "flat-only must be a prefix of the full report";

  // Request telemetry accumulated under the serve.request.* counters.
  std::string Stats =
      telemetry::Registry::instance().renderStatsJson("serve_stats");
  EXPECT_NE(Stats.find("serve.request.put_shard"), std::string::npos);
  EXPECT_NE(Stats.find("serve.request.query_report"), std::string::npos);

  // The store on disk is a plain profile store: reopening it offline
  // sees the pushed shard.
  Client.disconnect();
  D.Server->stop();
  auto Store = ProfileStore::open(D.StoreRoot);
  ASSERT_TRUE(static_cast<bool>(Store));
  ASSERT_EQ(Store->shards().size(), 1u);
  EXPECT_EQ(Store->shards().front().Digest, Digest);
}

TEST_F(ServeTest, DaemonReportMatchesOfflineAfterConcurrentPush) {
  // The acceptance bar: 16 concurrent clients push interleaved uploads,
  // and the daemon's report answer is byte-identical to what
  // `gprof-store report` computes offline over the resulting store.
  ServeOptions SO;
  SO.Workers = 8;
  SO.MaxQueuedConnections = 8;
  Daemon D("concurrent", SO);

  constexpr unsigned NumClients = 16;
  constexpr unsigned PushesPerClient = 4;
  std::mutex DigestsMutex;
  std::set<Sha256Digest> Digests;
  std::atomic<unsigned> Failures{0};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumClients; ++T)
    Threads.emplace_back([&, T] {
      // One client (= one connection = one daemon worker) per thread,
      // each pushing the shard variants in a different rotation so
      // uploads interleave.
      ServeClient Client(D.SocketPath);
      for (unsigned I = 0; I != PushesPerClient; ++I) {
        const auto &Bytes = (*Shards)[(T + I) % Shards->size()];
        auto Digest = Client.putShard(Bytes, *ImageId);
        if (!Digest) {
          (void)Digest.takeError();
          Failures.fetch_add(1);
          continue;
        }
        std::lock_guard<std::mutex> Lock(DigestsMutex);
        Digests.insert(*Digest);
      }
    });
  for (std::thread &Th : Threads)
    Th.join();
  ASSERT_EQ(Failures.load(), 0u);
  EXPECT_EQ(Digests.size(), Shards->size())
      << "distinct tick rates must land as distinct shards";

  ServeClient Client(D.SocketPath);
  QueryReportRequest Req;
  Req.ImagePath = *ImgPath;
  std::string DaemonText = cantFail(Client.queryReport(Req));
  Client.disconnect();
  D.Server->stop();

  // Offline reference: same store, same flags, the exact assembly
  // `gprof-store report` prints to stdout.
  auto Store = ProfileStore::open(D.StoreRoot);
  ASSERT_TRUE(static_cast<bool>(Store));
  ASSERT_EQ(Store->shards().size(), Digests.size());
  auto Merged = Store->merge({});
  ASSERT_TRUE(static_cast<bool>(Merged));
  // 64 uploads collapsed into one run per distinct shard.
  EXPECT_EQ(Merged->Data.RunCount, Digests.size());
  auto Img = Image::loadFromFile(*ImgPath);
  ASSERT_TRUE(static_cast<bool>(Img));
  AnalyzerOptions AO;
  AO.Threads = 1;
  auto Report = analyzeImageProfile(*Img, Merged->Data, AO);
  ASSERT_TRUE(static_cast<bool>(Report));
  std::string Offline = printFlatProfile(*Report, FlatPrintOptions{});
  Offline += "\n";
  Offline += printCallGraph(*Report, GraphPrintOptions{});
  EXPECT_EQ(DaemonText, Offline);
}

TEST_F(ServeTest, BackpressureAnswersRetryAtCapacity) {
  // Workers=1, queue=0: one connection in service is the whole capacity.
  // The connection-per-worker model makes this deterministic — an idle
  // open connection occupies the only slot.
  ServeOptions SO;
  SO.Workers = 1;
  SO.MaxQueuedConnections = 0;
  Daemon D("backpressure", SO);

  ServeClient Occupant(D.SocketPath);
  cantFail(Occupant.ping()); // Now admitted and held open.

  ClientOptions FailFast;
  FailFast.Retries = 0;
  FailFast.RetryBackoffMs = 0;
  ServeClient Rejected(D.SocketPath, FailFast);
  Error E = Rejected.ping();
  ASSERT_TRUE(static_cast<bool>(E));
  EXPECT_NE(E.message().find("capacity"), std::string::npos);

  // Freeing the slot lets the next client (with retry budget) through.
  Occupant.disconnect();
  ClientOptions Retrying;
  Retrying.Retries = 50;
  Retrying.RetryBackoffMs = 1;
  ServeClient Eventually(D.SocketPath, Retrying);
  cantFail(Eventually.ping());
}

//===----------------------------------------------------------------------===//
// Live observability: QUERY_STATS, the event tail, request tracing
//===----------------------------------------------------------------------===//

TEST_F(ServeTest, QueryStatsEndpointAndEventTail) {
  ServeOptions SO;
  SO.SlowRequestMs = 0; // Every request logs a request.slow event.
  Daemon D("stats", SO);
  ServeClient Client(D.SocketPath);
  cantFail(Client.putShard(Shards->front(), *ImageId));

  QueryStatsRequest Req;
  auto Resp = Client.queryStats(Req);
  ASSERT_TRUE(static_cast<bool>(Resp));
  ASSERT_TRUE(static_cast<bool>(validateJson(Resp->StatsJson)))
      << Resp->StatsJson;
  // The live shape: bench name, daemon scalars, latency histogram rows,
  // and the event tail.
  EXPECT_NE(Resp->StatsJson.find("\"bench\": \"gprof_store_serve\""),
            std::string::npos);
  EXPECT_NE(Resp->StatsJson.find("\"uptime_ns\": "), std::string::npos);
  EXPECT_NE(Resp->StatsJson.find("\"pid\": "), std::string::npos);
  EXPECT_NE(Resp->StatsJson.find("\"build\": "), std::string::npos);
  EXPECT_NE(Resp->StatsJson.find("\"events\": ["), std::string::npos);
  EXPECT_NE(Resp->StatsJson.find("serve.request.latency.put_shard"),
            std::string::npos);
  EXPECT_NE(Resp->StatsJson.find("\"kind\": \"histogram\""),
            std::string::npos);
  EXPECT_NE(Resp->StatsJson.find("\"event\": \"connection.accepted\""),
            std::string::npos);
  EXPECT_NE(Resp->StatsJson.find("\"event\": \"request.slow\""),
            std::string::npos);
  EXPECT_GT(Resp->LastSeq, 0u);

  // Incremental tail: resuming from LastSeq yields only newer events —
  // the slow-request event of the first QUERY_STATS itself, but none of
  // the events the first response already delivered.
  QueryStatsRequest Tail;
  Tail.SinceSeq = Resp->LastSeq;
  auto Resp2 = Client.queryStats(Tail);
  ASSERT_TRUE(static_cast<bool>(Resp2));
  ASSERT_TRUE(static_cast<bool>(validateJson(Resp2->StatsJson)));
  EXPECT_EQ(Resp2->StatsJson.find("\"event\": \"connection.accepted\""),
            std::string::npos);
  EXPECT_NE(Resp2->StatsJson.find("\"type\": \"query_stats\""),
            std::string::npos);
  EXPECT_GE(Resp2->LastSeq, Resp->LastSeq);

  // Prefix filter: only matching metric/histogram rows survive; daemon
  // scalars and events are unaffected.
  QueryStatsRequest Filtered;
  Filtered.Filter = "serve.request.latency.";
  auto Resp3 = Client.queryStats(Filtered);
  ASSERT_TRUE(static_cast<bool>(Resp3));
  ASSERT_TRUE(static_cast<bool>(validateJson(Resp3->StatsJson)));
  EXPECT_NE(Resp3->StatsJson.find("serve.request.latency.put_shard"),
            std::string::npos);
  EXPECT_EQ(Resp3->StatsJson.find("store.put.latency"), std::string::npos);
  EXPECT_NE(Resp3->StatsJson.find("\"uptime_ns\": "), std::string::npos);
}

TEST_F(ServeTest, RequestTracingCorrelatesClientAndDaemonSpans) {
  telemetry::Registry &R = telemetry::Registry::instance();
  R.resetValues();
  R.enableSpans(true);
  struct SpansOff {
    ~SpansOff() { telemetry::Registry::instance().enableSpans(false); }
  } Off;
  {
    // In-process daemon: client and daemon spans land in the same
    // registry, so the echoed request id is directly checkable.
    Daemon D("tracing");
    ServeClient Client(D.SocketPath);
    cantFail(Client.putShard(Shards->front(), *ImageId));
    QueryReportRequest Req;
    Req.ImagePath = *ImgPath;
    Req.Flags.FlatOnly = true;
    cantFail(Client.queryReport(Req));
  }

  std::vector<telemetry::SpanRecord> Spans = R.collectSpans();
  uint64_t PutReqId = 0, QueryReqId = 0;
  for (const telemetry::SpanRecord &S : Spans) {
    if (S.Name == "serve.client.put_shard")
      PutReqId = S.ReqId;
    if (S.Name == "serve.client.query_report")
      QueryReqId = S.ReqId;
  }
  ASSERT_NE(PutReqId, 0u) << "client span must carry the daemon's id";
  ASSERT_NE(QueryReqId, 0u);
  EXPECT_NE(PutReqId, QueryReqId) << "each request gets a fresh id";
  bool DaemonSpanSeen = false, MergeTagged = false;
  for (const telemetry::SpanRecord &S : Spans) {
    DaemonSpanSeen |= S.Name == "serve.request" && S.ReqId == PutReqId;
    MergeTagged |= S.Name == "store.merge" && S.ReqId == QueryReqId;
  }
  EXPECT_TRUE(DaemonSpanSeen)
      << "daemon-side serve.request span with the same id";
  EXPECT_TRUE(MergeTagged)
      << "the request id must flow into the store layer's spans";

  // The Chrome trace moves request-tagged spans onto synthetic
  // "request-N" tracks.
  TraceWriter W = TraceWriter::fromTelemetry("serve-test");
  auto Stats = validateTraceJson(W.render());
  ASSERT_TRUE(static_cast<bool>(Stats));
  bool HasRequestTrack = false;
  for (uint64_t Tid : Stats->Tids)
    HasRequestTrack |= Tid >= 1000000u;
  EXPECT_TRUE(HasRequestTrack) << "expected a synthetic request track";
}

//===----------------------------------------------------------------------===//
// Robustness
//===----------------------------------------------------------------------===//

TEST_F(ServeTest, SurvivesGarbageStreamsAndMidUploadDisconnect) {
  Daemon D("robust");

  // A clean upload first: it pins the store's geometry, so mutated
  // frames that still parse as gmon data but disagree on sampling rate
  // or histogram shape are rejected at ingest validation.
  {
    ServeClient Seed(D.SocketPath);
    cantFail(Seed.putShard(Shards->front(), *ImageId));
  }

  // A peer that is not speaking the protocol at all.
  {
    UnixSocket Raw = cantFail(UnixSocket::connectTo(D.SocketPath));
    std::vector<uint8_t> Junk(FrameHeaderSize, 'X');
    cantFail(Raw.sendAll(Junk.data(), Junk.size()));
  }
  // A header promising an oversized payload.
  {
    UnixSocket Raw = cantFail(UnixSocket::connectTo(D.SocketPath));
    std::vector<uint8_t> Header =
        encodeFrameHeader(MsgType::PutShard, MaxFramePayload + 1);
    cantFail(Raw.sendAll(Header.data(), Header.size()));
  }
  // A client that vanishes mid-upload: header promises 100 bytes, only
  // 10 arrive before the close.
  {
    UnixSocket Raw = cantFail(UnixSocket::connectTo(D.SocketPath));
    std::vector<uint8_t> Header = encodeFrameHeader(MsgType::PutShard, 100);
    cantFail(Raw.sendAll(Header.data(), Header.size()));
    std::vector<uint8_t> Partial(10, 1);
    cantFail(Raw.sendAll(Partial.data(), Partial.size()));
  }
  // Byte-mutated frames at assorted offsets (magic, type, length, image
  // id, gmon bytes), one fresh connection each.
  {
    PutShardRequest Put;
    Put.GmonBytes = Shards->front();
    std::vector<uint8_t> Payload = encodePutShard(Put);
    std::vector<uint8_t> Valid =
        encodeFrameHeader(MsgType::PutShard, Payload.size());
    Valid.insert(Valid.end(), Payload.begin(), Payload.end());
    for (size_t Offset : {size_t(0), size_t(4), size_t(5),
                          FrameHeaderSize, FrameHeaderSize + 40,
                          Valid.size() - 1}) {
      std::vector<uint8_t> Mutated = Valid;
      Mutated[Offset] ^= 0xFF;
      UnixSocket Raw = cantFail(UnixSocket::connectTo(D.SocketPath));
      // The server may close mid-send on header damage; that is the
      // client's problem, not the daemon's.
      Error E = Raw.sendAll(Mutated.data(), Mutated.size());
      if (E)
        (void)E.message();
    }
  }

  // Through all of that the daemon still answers, still deduplicates,
  // and every shard it holds is loadable — nothing torn or unparseable
  // landed in the store.
  ClientOptions Retrying;
  Retrying.Retries = 10;
  ServeClient Client(D.SocketPath, Retrying);
  cantFail(Client.ping());
  Sha256Digest Seeded = cantFail(Client.putShard(Shards->front(), *ImageId));
  auto Listed = cantFail(Client.list());
  EXPECT_GE(Listed.size(), 1u);
  bool SeedPresent = false;
  for (const ShardInfo &S : Listed)
    SeedPresent |= S.Digest == Seeded;
  EXPECT_TRUE(SeedPresent);

  Client.disconnect();
  D.Server->stop();
  auto Reopened = ProfileStore::open(D.StoreRoot);
  ASSERT_TRUE(static_cast<bool>(Reopened));
  ASSERT_EQ(Reopened->shards().size(), Listed.size());
  for (const ShardInfo &S : Reopened->shards())
    cantFail(Reopened->loadShard(S.Digest));

  // gc sweeps temp files stranded by interrupted writes.
  cantFail(writeFileText(D.StoreRoot + "/index.bin.tmp", "stranded"));
  cantFail(createDirectories(D.StoreRoot + "/objects/zz"));
  cantFail(writeFileText(D.StoreRoot + "/objects/zz/upload.gmon.tmp", "x"));
  auto Store = ProfileStore::open(D.StoreRoot);
  ASSERT_TRUE(static_cast<bool>(Store));
  auto Stats = Store->gc();
  ASSERT_TRUE(static_cast<bool>(Stats));
  EXPECT_EQ(Stats->TempFiles, 2u);
}

TEST_F(ServeTest, UnreachableDaemonFailsCleanly) {
  ClientOptions FailFast;
  FailFast.Retries = 0;
  FailFast.RetryBackoffMs = 0;
  std::string Nowhere = tempPath("nowhere.sock");
  ServeClient Client(Nowhere, FailFast);
  Error E = Client.ping();
  ASSERT_TRUE(static_cast<bool>(E));
  EXPECT_FALSE(E.message().empty());
  auto Push = Client.putShard(Shards->front());
  ASSERT_FALSE(static_cast<bool>(Push));
  (void)Push.takeError();
}

TEST_F(ServeTest, FaultInjectedFailuresLeaveStoreIntact) {
  // Fault points are process-global; never leak an armed one past this
  // test, even through an ASSERT bailout.
  struct DisarmGuard {
    ~DisarmGuard() { fault::disarmAll(); }
  } Disarm;
  Daemon D("faults");
  ServeClient Client(D.SocketPath);
  cantFail(Client.putShard(Shards->front(), *ImageId));
  Client.disconnect();
  auto Before = snapshotTree(D.StoreRoot);

  // Index-layer fault: the daemon's put fails at entry; the client gets
  // a definitive ERROR and the tree is byte-identical to before the
  // upload started.
  fault::arm("store.put", 1, 0);
  {
    ServeClient Pusher(D.SocketPath);
    auto Push = Pusher.putShard((*Shards)[1], *ImageId);
    ASSERT_FALSE(static_cast<bool>(Push));
    EXPECT_NE(Push.message().find("daemon at"), std::string::npos);
  }
  fault::disarmAll();
  EXPECT_EQ(snapshotTree(D.StoreRoot), Before);

  // Socket-layer faults: every client write fails, then the connect
  // itself fails.  No bytes reach the daemon; nothing changes on disk.
  fault::arm("sock.write", 1, 0);
  {
    ClientOptions FailFast;
    FailFast.Retries = 0;
    FailFast.RetryBackoffMs = 0;
    ServeClient Pusher(D.SocketPath, FailFast);
    auto Push = Pusher.putShard((*Shards)[1], *ImageId);
    ASSERT_FALSE(static_cast<bool>(Push));
    (void)Push.takeError();
  }
  fault::disarmAll();
  fault::arm("sock.connect", 1, 1);
  {
    ClientOptions FailFast;
    FailFast.Retries = 0;
    FailFast.RetryBackoffMs = 0;
    ServeClient Pusher(D.SocketPath, FailFast);
    auto Push = Pusher.putShard((*Shards)[1], *ImageId);
    ASSERT_FALSE(static_cast<bool>(Push));
    (void)Push.takeError();
  }
  fault::disarmAll();
  EXPECT_EQ(snapshotTree(D.StoreRoot), Before);

  // With one more retry than injected connect faults, the push recovers
  // — the client's bounded backoff mirrors StoreOptions::IoRetries.
  fault::arm("sock.connect", 1, 1);
  {
    ClientOptions OneRetry;
    OneRetry.Retries = 1;
    OneRetry.RetryBackoffMs = 1;
    ServeClient Pusher(D.SocketPath, OneRetry);
    cantFail(Pusher.putShard((*Shards)[1], *ImageId));
  }
  fault::disarmAll();
  EXPECT_NE(snapshotTree(D.StoreRoot), Before);
}

//===----------------------------------------------------------------------===//
// CLI loop: gprof-store serve / push / query and tlrun --push
//===----------------------------------------------------------------------===//

TEST_F(ServeTest, CliServePushQueryAndTlrunPush) {
  std::string StoreRoot = tempPath("cli_store");
  std::string SocketPath = tempPath("cli.sock");
  std::string GmonPath = tempPath("cli_gmon.out");
  std::filesystem::remove_all(StoreRoot);

  // Start the daemon as a real process, like an operator would.
  std::string Out;
  int Rc = runCommand(format("%s serve %s --socket %s >/dev/null 2>&1 "
                             "& echo $!",
                             GPROF_STORE_PATH, StoreRoot.c_str(),
                             SocketPath.c_str()),
                      Out);
  ASSERT_EQ(Rc, 0) << Out;
  pid_t DaemonPid = static_cast<pid_t>(std::stol(Out));
  ASSERT_GT(DaemonPid, 0);
  struct KillGuard {
    pid_t Pid;
    ~KillGuard() { ::kill(Pid, SIGKILL); }
  } Guard{DaemonPid};
  ASSERT_TRUE(waitForDaemon(SocketPath));

  // tlrun --push: the profiled run lands its shard in the daemon and
  // still writes the local gmon file.
  Rc = runCommand(format("%s --quiet --gmon %s --push %s %s", TLRUN_PATH,
                         GmonPath.c_str(), SocketPath.c_str(),
                         ImgPath->c_str()),
                  Out);
  ASSERT_EQ(Rc, 0) << Out;
  EXPECT_NE(Out.find("profile pushed"), std::string::npos) << Out;
  EXPECT_TRUE(fileExists(GmonPath));

  // gprof-store push: CLI upload of an existing gmon file.
  Rc = runCommand(format("%s push %s --image %s %s", GPROF_STORE_PATH,
                         SocketPath.c_str(), ImgPath->c_str(),
                         GmonPath.c_str()),
                  Out);
  ASSERT_EQ(Rc, 0) << Out;
  ASSERT_GE(Out.size(), 64u);
  std::string Digest = Out.substr(0, 64);

  // gprof-store query --list shows what the daemon holds.
  Rc = runCommand(format("%s query %s --list", GPROF_STORE_PATH,
                         SocketPath.c_str()),
                  Out);
  ASSERT_EQ(Rc, 0) << Out;
  EXPECT_NE(Out.find(Digest.substr(0, 12)), std::string::npos) << Out;

  // The daemon-side report is byte-identical to the offline CLI report
  // over the same store.
  std::string ViaDaemon, Offline;
  Rc = runCommandStdout(format("%s query %s %s --flat-only",
                               GPROF_STORE_PATH, SocketPath.c_str(),
                               ImgPath->c_str()),
                        ViaDaemon);
  ASSERT_EQ(Rc, 0) << ViaDaemon;

  // Clean daemon shutdown on SIGTERM, releasing the socket and store.
  ASSERT_EQ(::kill(DaemonPid, SIGTERM), 0);
  for (int I = 0; I != 100 && fileExists(SocketPath); ++I)
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(fileExists(SocketPath)) << "daemon did not shut down";

  Rc = runCommandStdout(format("%s report --flat-only %s %s",
                               GPROF_STORE_PATH, StoreRoot.c_str(),
                               ImgPath->c_str()),
                        Offline);
  ASSERT_EQ(Rc, 0) << Offline;
  EXPECT_EQ(ViaDaemon, Offline);

  // Unreachable daemon: tlrun --push is a clean nonzero exit with a
  // diagnostic, and so is gprof-store push.
  std::string Nowhere = tempPath("cli_nowhere.sock");
  Rc = runCommand(format("%s --quiet --gmon %s --push %s %s", TLRUN_PATH,
                         GmonPath.c_str(), Nowhere.c_str(),
                         ImgPath->c_str()),
                  Out);
  EXPECT_NE(Rc, 0);
  EXPECT_NE(Out.find("push to"), std::string::npos) << Out;
  Rc = runCommand(format("%s push %s %s --retries 0", GPROF_STORE_PATH,
                         Nowhere.c_str(), GmonPath.c_str()),
                  Out);
  EXPECT_NE(Rc, 0);

  std::filesystem::remove_all(StoreRoot);
  std::remove(GmonPath.c_str());
}

//===----------------------------------------------------------------------===//
// Observability smoke: the ctest gprof_stats_smoke target filters on this
// fixture, so it boots a real daemon, pushes shards, and checks `gprof-store
// stats` end to end.
//===----------------------------------------------------------------------===//

namespace {
class ServeStatsTest : public ServeTest {};
} // namespace

TEST_F(ServeStatsTest, CliStatsEndToEnd) {
  std::string StoreRoot = tempPath("stats_store");
  std::string SocketPath = tempPath("stats.sock");
  std::string GmonPath = tempPath("stats_gmon.out");
  std::string LogPath = tempPath("stats_events.jsonl");
  std::filesystem::remove_all(StoreRoot);
  std::remove(LogPath.c_str());

  std::string Out;
  int Rc = runCommand(format("%s serve %s --socket %s --log-file %s "
                             ">/dev/null 2>&1 & echo $!",
                             GPROF_STORE_PATH, StoreRoot.c_str(),
                             SocketPath.c_str(), LogPath.c_str()),
                      Out);
  ASSERT_EQ(Rc, 0) << Out;
  pid_t DaemonPid = static_cast<pid_t>(std::stol(Out));
  ASSERT_GT(DaemonPid, 0);
  struct KillGuard {
    pid_t Pid;
    ~KillGuard() { ::kill(Pid, SIGKILL); }
  } Guard{DaemonPid};
  ASSERT_TRUE(waitForDaemon(SocketPath));

  // Land two shards so the latency histograms have data.
  cantFail(writeFileBytes(GmonPath, Shards->front()));
  Rc = runCommand(format("%s push %s --image %s %s %s", GPROF_STORE_PATH,
                         SocketPath.c_str(), ImgPath->c_str(),
                         GmonPath.c_str(), GmonPath.c_str()),
                  Out);
  ASSERT_EQ(Rc, 0) << Out;

  // `gprof-store stats` prints one validated JSON document with a
  // nonzero put-shard latency count.
  std::string StatsJson;
  Rc = runCommandStdout(format("%s stats %s", GPROF_STORE_PATH,
                               SocketPath.c_str()),
                        StatsJson);
  ASSERT_EQ(Rc, 0) << StatsJson;
  ASSERT_TRUE(static_cast<bool>(validateJson(StatsJson))) << StatsJson;
  const std::string Row = "\"metric\": \"serve.request.latency.put_shard\"";
  size_t RowPos = StatsJson.find(Row);
  ASSERT_NE(RowPos, std::string::npos) << StatsJson;
  size_t CountPos = StatsJson.find("\"count\": ", RowPos);
  ASSERT_NE(CountPos, std::string::npos);
  unsigned long long Count =
      std::stoull(StatsJson.substr(CountPos + 9));
  EXPECT_GE(Count, 2u) << StatsJson;
  EXPECT_NE(StatsJson.find("\"event\": \"connection.accepted\""),
            std::string::npos);

  // --filter narrows the rows; the daemon scalars stay.
  Rc = runCommandStdout(format("%s stats %s --filter serve.request.latency.",
                               GPROF_STORE_PATH, SocketPath.c_str()),
                        StatsJson);
  ASSERT_EQ(Rc, 0) << StatsJson;
  ASSERT_TRUE(static_cast<bool>(validateJson(StatsJson))) << StatsJson;
  EXPECT_NE(StatsJson.find(Row), std::string::npos);
  EXPECT_EQ(StatsJson.find("\"metric\": \"serve.request.ping\""),
            std::string::npos);
  EXPECT_NE(StatsJson.find("\"uptime_ns\": "), std::string::npos);

  // Clean SIGTERM shutdown; the --log-file sink holds one valid JSON
  // object per line, including the accepted connections.  The socket
  // disappears a beat before the final serve.stop event lands in the
  // sink, so wait for the event itself rather than the unlink.
  ASSERT_EQ(::kill(DaemonPid, SIGTERM), 0);
  std::string LogText;
  for (int I = 0; I != 100; ++I) {
    auto Text = readFileText(LogPath);
    if (Text) {
      LogText = *Text;
      if (LogText.find("\"event\": \"serve.stop\"") != std::string::npos)
        break;
    } else {
      (void)Text.takeError();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_FALSE(fileExists(SocketPath)) << "daemon did not shut down";
  ASSERT_FALSE(LogText.empty());
  size_t Lines = 0;
  for (size_t Pos = 0; Pos < LogText.size();) {
    size_t End = LogText.find('\n', Pos);
    if (End == std::string::npos)
      End = LogText.size();
    std::string Line = LogText.substr(Pos, End - Pos);
    if (!Line.empty()) {
      ++Lines;
      EXPECT_TRUE(static_cast<bool>(validateJson(Line))) << Line;
    }
    Pos = End + 1;
  }
  EXPECT_GE(Lines, 2u) << LogText;
  EXPECT_NE(LogText.find("\"event\": \"serve.stop\""), std::string::npos);

  std::filesystem::remove_all(StoreRoot);
  std::remove(GmonPath.c_str());
  std::remove(LogPath.c_str());
}
